//! A minimal zero-dependency JSON value type and recursive-descent
//! parser.
//!
//! The workspace emits JSON by hand (see [`crate::telemetry`] and
//! [`crate::bench`]) because the offline build cannot fetch `serde`.
//! Reading JSON back became necessary once `BENCH.json` baselines have
//! to be compared across runs — and a parser also lets tests round-trip
//! every emitted format instead of string-matching it. The grammar is
//! exactly RFC 8259 minus one liberty: numbers are held as `f64`, which
//! is exact for the integer counters the workspace emits up to 2⁵³
//! (≈ 104 days of nanoseconds — far beyond any recorded wall time).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects preserve no duplicate keys (the last
/// occurrence wins, as with most parsers).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module note on integer exactness).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. A sorted map keeps comparisons order-insensitive.
    Obj(BTreeMap<String, Json>),
}

/// A parse error with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos after the digits; skip the
                            // increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn telemetry_escaper_output_parses_back() {
        let original = "quote\" slash\\ newline\n tab\t ctl\u{1} unicode é";
        let escaped = format!("\"{}\"", crate::telemetry::json_escape(original));
        assert_eq!(Json::parse(&escaped).unwrap().as_str(), Some(original));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"lone \\ud800\"").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integer_accessors_guard_fractions() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
    }
}

//! String interning.
//!
//! Relation names and symbolic constants are interned into compact
//! [`Symbol`] ids so that the hot evaluation paths only ever compare and
//! hash 32-bit integers. The [`Interner`] is an explicit object owned by
//! whoever builds programs and instances (typically one per "session");
//! evaluation itself never needs it — only parsing and display do.

use crate::hash::FxHashMap;
use std::fmt;

/// An interned string (relation name or symbolic constant).
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; mixing symbols from different interners is a logic error (it
/// cannot cause memory unsafety, just wrong names).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw id. Exposed for tight loops (e.g. dense per-predicate
    /// tables indexed by symbol id).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw id previously obtained via
    /// [`Symbol::index`]. The caller must ensure the id came from the same
    /// interner.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("too many symbols"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).copied()
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl crate::space::HeapSize for Interner {
    /// Every name is stored twice (the id-to-name vector and the
    /// lookup-map key), each behind a `Box<str>` handle, plus one
    /// symbol id per lookup entry.
    fn heap_bytes(&self) -> usize {
        self.names
            .iter()
            .map(|n| 2 * (crate::space::STR_HEADER_BYTES + n.len()) + crate::space::SYMBOL_BYTES)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("edge");
        let b = i.intern("edge");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.name(a), "a");
        assert_eq!(i.name(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn index_roundtrip() {
        let mut i = Interner::new();
        let s = i.intern("x");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}

//! Hierarchical tracing: a span tree recording *where* evaluation time
//! and work went — eval → stratum → round → rule, with join/absorb
//! leaves and per-worker timelines from the parallel executor.
//!
//! The flat [`crate::telemetry::EvalTrace`] says how much work each
//! stage did; the span tree says which rule, which join, and which
//! worker did it. Spans carry two kinds of payload:
//!
//! * **wall-clock** (`start_nanos`/`dur_nanos`, relative to the tracer's
//!   creation) — machine- and schedule-dependent, never compared;
//! * **work gauges** (`gauges`: fired counts, delta sizes…) — for the
//!   deterministic span kinds these are byte-identical across thread
//!   counts, and [`gauge_tree`] projects exactly that comparable part.
//!
//! Span trees export as Chrome trace-event JSON ([`to_chrome_json`]),
//! loadable in Perfetto / `chrome://tracing`: the main evaluation
//! nests on one timeline lane, and each parallel worker gets its own
//! lane so delta-chunk imbalance is directly visible.
//!
//! Like the rest of the workspace this is zero-dependency: a disabled
//! [`Tracer`] (the default) is a single `Option` check per call and
//! never reads the clock.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::json::Json;
use crate::telemetry::json_escape;
use crate::{Interner, Symbol};

/// What a span measures. The **deterministic** kinds (`Eval`, `Stratum`,
/// `Round`, `Rule`, `Phase`) carry only thread-invariant work gauges and
/// participate in [`gauge_tree`]; the rest (`Worker`, `Join`, `Absorb`)
/// are timing/shard detail that legitimately varies with the schedule
/// and thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole engine run.
    Eval,
    /// One stratum of a stratified evaluation.
    Stratum,
    /// One fixpoint round / stage.
    Round,
    /// One rule's matches within a round (all delta variants).
    Rule,
    /// One worker thread's share of a parallel round.
    Worker,
    /// Join work of a round (index probes/builds), as counters.
    Join,
    /// Merging a round's pending delta into the instance.
    Absorb,
    /// Any other engine-specific phase (rewrite, candidate check…).
    Phase,
}

impl SpanKind {
    /// The stable lowercase name used in exports and validation.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Eval => "eval",
            SpanKind::Stratum => "stratum",
            SpanKind::Round => "round",
            SpanKind::Rule => "rule",
            SpanKind::Worker => "worker",
            SpanKind::Join => "join",
            SpanKind::Absorb => "absorb",
            SpanKind::Phase => "phase",
        }
    }

    /// Whether this kind's gauges must be byte-identical across thread
    /// counts (and therefore appears in [`gauge_tree`]).
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            SpanKind::Eval | SpanKind::Stratum | SpanKind::Round | SpanKind::Rule | SpanKind::Phase
        )
    }
}

/// One node of the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// What the span measures.
    pub kind: SpanKind,
    /// Display name (`"round 3"`, `"rule 1"`, …).
    pub name: String,
    /// Predicate the span is about (rule head), resolved at export time.
    pub pred: Option<Symbol>,
    /// Worker lane for parallel-round shards; `None` = the main thread.
    pub lane: Option<usize>,
    /// Start, in nanoseconds since the tracer was created.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
    /// Work gauges (insertion-ordered, keys are code literals).
    pub gauges: Vec<(&'static str, u64)>,
    /// Child spans, in completion order.
    pub children: Vec<Span>,
}

impl Span {
    /// A completed leaf span with no timing or payload; the caller fills
    /// in whatever fields apply before attaching it via [`Tracer::leaf`].
    pub fn leaf(kind: SpanKind, name: impl Into<String>) -> Span {
        Span {
            kind,
            name: name.into(),
            pred: None,
            lane: None,
            start_nanos: 0,
            dur_nanos: 0,
            gauges: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The value of a gauge, if recorded.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

#[derive(Debug, Default)]
struct TraceState {
    roots: Vec<Span>,
    open: Vec<Span>,
}

#[derive(Debug)]
struct TracerInner {
    origin: Instant,
    state: Mutex<TraceState>,
}

/// A cheap, clonable handle to an optional span-tree recorder.
///
/// Disabled (the default) every method is a no-op behind one `Option`
/// check — no lock, no clock. Enabled, all clones share one
/// mutex-guarded tree; spans open/close via RAII [`SpanGuard`]s so the
/// tree stays well-formed across early `?` returns.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The disabled (no-op) handle.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled handle with an empty tree; now == 0.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                origin: Instant::now(),
                state: Mutex::new(TraceState::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer was created (0 when disabled).
    pub fn now_nanos(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| u64::try_from(i.origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut TraceState) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|i| f(&mut i.state.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Opens a span; it closes (and attaches to its parent) when the
    /// returned guard drops. Guards must nest like scopes.
    #[must_use]
    pub fn span(&self, kind: SpanKind, name: impl Into<String>) -> SpanGuard {
        if self.inner.is_some() {
            let mut span = Span::leaf(kind, name);
            span.start_nanos = self.now_nanos();
            self.with_state(|s| s.open.push(span));
            SpanGuard {
                tracer: self.clone(),
            }
        } else {
            SpanGuard {
                tracer: Tracer::off(),
            }
        }
    }

    /// Records a work gauge on the innermost open span.
    pub fn gauge(&self, key: &'static str, value: u64) {
        self.with_state(|s| {
            if let Some(span) = s.open.last_mut() {
                span.gauges.push((key, value));
            }
        });
    }

    /// Tags the innermost open span with a predicate.
    pub fn set_pred(&self, pred: Symbol) {
        self.with_state(|s| {
            if let Some(span) = s.open.last_mut() {
                span.pred = Some(pred);
            }
        });
    }

    /// Attaches an already-completed span as a child of the innermost
    /// open span (or as a root if none is open).
    pub fn leaf(&self, span: Span) {
        self.with_state(|s| match s.open.last_mut() {
            Some(parent) => parent.children.push(span),
            None => s.roots.push(span),
        });
    }

    /// Drains the recorded tree. Any span still open is closed at the
    /// current time (tolerates engines that errored mid-span).
    pub fn finish(&self) -> Vec<Span> {
        let now = self.now_nanos();
        self.with_state(|s| {
            while let Some(mut span) = s.open.pop() {
                span.dur_nanos = now.saturating_sub(span.start_nanos);
                match s.open.last_mut() {
                    Some(parent) => parent.children.push(span),
                    None => s.roots.push(span),
                }
            }
            std::mem::take(&mut s.roots)
        })
        .unwrap_or_default()
    }
}

/// RAII guard for an open span; dropping it closes the span.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let now = self.tracer.now_nanos();
        self.tracer.with_state(|s| {
            if let Some(mut span) = s.open.pop() {
                span.dur_nanos = now.saturating_sub(span.start_nanos);
                match s.open.last_mut() {
                    Some(parent) => parent.children.push(span),
                    None => s.roots.push(span),
                }
            }
        });
    }
}

/// Renders the deterministic projection of a span tree: only the
/// deterministic kinds (see [`SpanKind::is_deterministic`]), only names,
/// predicates, and work gauges — no wall times, no lanes. Two runs of
/// the same workload must produce byte-identical projections for every
/// thread count; tests and `scripts/check.sh` compare exactly this.
pub fn gauge_tree(roots: &[Span], interner: &Interner) -> String {
    fn walk(span: &Span, depth: usize, interner: &Interner, out: &mut String) {
        if !span.kind.is_deterministic() {
            return;
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{} {}", span.kind.as_str(), span.name);
        if let Some(pred) = span.pred {
            let _ = write!(out, " pred={}", interner.name(pred));
        }
        for (k, v) in &span.gauges {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for child in &span.children {
            walk(child, depth + 1, interner, out);
        }
    }
    let mut out = String::new();
    for span in roots {
        walk(span, 0, interner, &mut out);
    }
    out
}

/// Sums a gauge over all spans of one kind in the tree.
pub fn sum_gauge(roots: &[Span], kind: SpanKind, key: &str) -> u64 {
    fn walk(span: &Span, kind: SpanKind, key: &str) -> u64 {
        let own = if span.kind == kind {
            span.gauge(key).unwrap_or(0)
        } else {
            0
        };
        own + span
            .children
            .iter()
            .map(|c| walk(c, kind, key))
            .sum::<u64>()
    }
    roots.iter().map(|s| walk(s, kind, key)).sum()
}

/// Exports a span tree as Chrome trace-event JSON (the "JSON Array
/// Format" with `traceEvents`), loadable in Perfetto and
/// `chrome://tracing`. Complete events (`ph:"X"`) carry microsecond
/// timestamps; the main evaluation is thread 1 and each worker lane `w`
/// is thread `w + 2`, named via `thread_name` metadata events.
pub fn to_chrome_json(roots: &[Span], interner: &Interner) -> String {
    fn tid(span: &Span) -> usize {
        span.lane.map(|l| l + 2).unwrap_or(1)
    }

    fn push_event(span: &Span, interner: &Interner, out: &mut String) {
        let name = match span.pred {
            Some(pred) => format!("{} [{}]", span.name, interner.name(pred)),
            None => span.name.clone(),
        };
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{}",
            json_escape(&name),
            span.kind.as_str(),
            span.start_nanos as f64 / 1000.0,
            span.dur_nanos as f64 / 1000.0,
            tid(span)
        );
        out.push_str(",\"args\":{\"kind\":\"");
        out.push_str(span.kind.as_str());
        out.push('"');
        for (k, v) in &span.gauges {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        out.push_str("}}");
        for child in &span.children {
            push_event(child, interner, out);
        }
    }

    fn collect_lanes(span: &Span, lanes: &mut Vec<usize>) {
        if let Some(l) = span.lane {
            if !lanes.contains(&l) {
                lanes.push(l);
            }
        }
        for child in &span.children {
            collect_lanes(child, lanes);
        }
    }

    let mut lanes = Vec::new();
    for span in roots {
        collect_lanes(span, &mut lanes);
    }
    lanes.sort_unstable();

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"main\"}}",
    );
    for l in &lanes {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"worker {l}\"}}}}",
            l + 2
        );
    }
    for span in roots {
        push_event(span, interner, &mut out);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Validates Chrome trace-event JSON produced by [`to_chrome_json`] (or
/// any conforming tool): the document must parse, `traceEvents` must be
/// an array of well-formed `X`/`M` events, and every kind listed in
/// `expect_kinds` must occur on at least one complete event. Returns a
/// short summary (`"<n> events, kinds: ..."`) on success.
pub fn validate_chrome_trace(text: &str, expect_kinds: &[&str]) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut kinds: Vec<String> = Vec::new();
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i}: missing numeric `{key}`"));
            }
        }
        match ph {
            "X" => {
                complete += 1;
                for key in ["ts", "dur"] {
                    match ev.get(key).and_then(Json::as_f64) {
                        Some(v) if v >= 0.0 => {}
                        _ => return Err(format!("event {i}: missing non-negative `{key}`")),
                    }
                }
                if let Some(kind) = ev
                    .get("args")
                    .and_then(|a| a.get("kind"))
                    .and_then(Json::as_str)
                {
                    if !kinds.iter().any(|k| k == kind) {
                        kinds.push(kind.to_string());
                    }
                }
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    if complete == 0 {
        return Err("no complete (`ph:\"X\"`) events".into());
    }
    let missing: Vec<&str> = expect_kinds
        .iter()
        .copied()
        .filter(|want| !kinds.iter().any(|k| k == want))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing span kinds: {} (present: {})",
            missing.join(", "),
            kinds.join(", ")
        ));
    }
    kinds.sort_unstable();
    Ok(format!(
        "{} events ({complete} spans), kinds: {}",
        events.len(),
        kinds.join(", ")
    ))
}

/// Aggregates all `Rule` spans by (name, predicate) and renders the
/// top-`n` hottest rules by total wall time: the table the bench
/// harness and the REPL `.profile` command print.
pub fn hottest_rules(roots: &[Span], interner: &Interner, n: usize) -> String {
    struct Agg {
        name: String,
        pred: Option<Symbol>,
        dur_nanos: u64,
        fired: u64,
        rounds: u64,
    }
    fn walk(span: &Span, aggs: &mut Vec<Agg>) {
        if span.kind == SpanKind::Rule {
            let fired = span.gauge("fired").unwrap_or(0);
            match aggs
                .iter_mut()
                .find(|a| a.name == span.name && a.pred == span.pred)
            {
                Some(a) => {
                    a.dur_nanos += span.dur_nanos;
                    a.fired += fired;
                    a.rounds += 1;
                }
                None => aggs.push(Agg {
                    name: span.name.clone(),
                    pred: span.pred,
                    dur_nanos: span.dur_nanos,
                    fired,
                    rounds: 1,
                }),
            }
        }
        for child in &span.children {
            walk(child, aggs);
        }
    }
    let mut aggs = Vec::new();
    for span in roots {
        walk(span, &mut aggs);
    }
    if aggs.is_empty() {
        return "no rule spans recorded\n".to_string();
    }
    aggs.sort_by(|a, b| b.dur_nanos.cmp(&a.dur_nanos).then(a.name.cmp(&b.name)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>10} {:>7}",
        "hottest rules", "wall", "fired", "rounds"
    );
    for a in aggs.iter().take(n) {
        let label = match a.pred {
            Some(pred) => format!("{} [{}]", a.name, interner.name(pred)),
            None => a.name.clone(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10.3}ms {:>10} {:>7}",
            label,
            a.dur_nanos as f64 / 1e6,
            a.fired,
            a.rounds
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::off();
        assert!(!tr.is_enabled());
        assert_eq!(tr.now_nanos(), 0);
        {
            let _g = tr.span(SpanKind::Eval, "x");
            tr.gauge("k", 1);
            tr.leaf(Span::leaf(SpanKind::Join, "j"));
        }
        assert!(tr.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_close_in_scope_order() {
        let tr = Tracer::enabled();
        {
            let _eval = tr.span(SpanKind::Eval, "seminaive");
            {
                let _round = tr.span(SpanKind::Round, "round 1");
                tr.gauge("facts_added", 3);
                tr.leaf(Span::leaf(SpanKind::Join, "joins"));
            }
            {
                let _round = tr.span(SpanKind::Round, "round 2");
                tr.gauge("facts_added", 0);
            }
        }
        let roots = tr.finish();
        assert_eq!(roots.len(), 1);
        let eval = &roots[0];
        assert_eq!(eval.kind, SpanKind::Eval);
        assert_eq!(eval.children.len(), 2);
        assert_eq!(eval.children[0].gauge("facts_added"), Some(3));
        assert_eq!(eval.children[0].children[0].kind, SpanKind::Join);
        assert!(eval.dur_nanos >= eval.children[1].dur_nanos);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let tr = Tracer::enabled();
        let g = tr.span(SpanKind::Eval, "e");
        let g2 = tr.span(SpanKind::Round, "r");
        std::mem::forget(g2);
        std::mem::forget(g);
        let roots = tr.finish();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
    }

    fn sample_tree(interner: &mut Interner) -> Vec<Span> {
        let t = interner.intern("T");
        let tr = Tracer::enabled();
        {
            let _eval = tr.span(SpanKind::Eval, "seminaive");
            {
                let _round = tr.span(SpanKind::Round, "round 1");
                let mut rule = Span::leaf(SpanKind::Rule, "rule 0");
                rule.pred = Some(t);
                rule.gauges.push(("fired", 7));
                tr.leaf(rule);
                let mut worker = Span::leaf(SpanKind::Worker, "worker 0");
                worker.lane = Some(0);
                tr.leaf(worker);
                tr.gauge("facts_added", 7);
            }
            tr.gauge("final_facts", 7);
        }
        tr.finish()
    }

    #[test]
    fn gauge_tree_hides_nondeterministic_kinds() {
        let mut interner = Interner::new();
        let roots = sample_tree(&mut interner);
        let proj = gauge_tree(&roots, &interner);
        assert!(proj.contains("eval seminaive final_facts=7"), "{proj}");
        assert!(proj.contains("rule rule 0 pred=T fired=7"), "{proj}");
        assert!(!proj.contains("worker"), "{proj}");
        assert!(!proj.contains("nanos"), "{proj}");
    }

    #[test]
    fn sum_gauge_totals_rule_fired() {
        let mut interner = Interner::new();
        let roots = sample_tree(&mut interner);
        assert_eq!(sum_gauge(&roots, SpanKind::Rule, "fired"), 7);
        assert_eq!(sum_gauge(&roots, SpanKind::Round, "facts_added"), 7);
    }

    #[test]
    fn chrome_export_is_valid_and_has_lanes() {
        let mut interner = Interner::new();
        let roots = sample_tree(&mut interner);
        let json = to_chrome_json(&roots, &interner);
        let summary = validate_chrome_trace(&json, &["eval", "round", "rule", "worker"]).unwrap();
        assert!(summary.contains("worker"), "{summary}");
        // The worker lane got its own named thread.
        assert!(json.contains("\"tid\":2"), "{json}");
        assert!(json.contains("worker 0"), "{json}");
        // Missing kinds are reported.
        let err = validate_chrome_trace(&json, &["stratum"]).unwrap_err();
        assert!(err.contains("stratum"), "{err}");
        // Garbage is rejected.
        assert!(validate_chrome_trace("{}", &[]).is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{}]}", &[]).is_err());
    }

    #[test]
    fn hottest_rules_ranks_by_wall_time() {
        let mut interner = Interner::new();
        let t = interner.intern("T");
        let mut slow = Span::leaf(SpanKind::Rule, "rule 1");
        slow.pred = Some(t);
        slow.dur_nanos = 5_000_000;
        slow.gauges.push(("fired", 100));
        let mut fast = Span::leaf(SpanKind::Rule, "rule 0");
        fast.dur_nanos = 1_000;
        fast.gauges.push(("fired", 3));
        let mut round = Span::leaf(SpanKind::Round, "round 1");
        round.children.push(fast);
        round.children.push(slow);
        let table = hottest_rules(&[round], &interner, 10);
        let pos_slow = table.find("rule 1 [T]").unwrap();
        let pos_fast = table.find("rule 0").unwrap();
        assert!(pos_slow < pos_fast, "{table}");
        assert!(table.contains("100"), "{table}");
        assert_eq!(hottest_rules(&[], &interner, 5), "no rule spans recorded\n");
    }
}

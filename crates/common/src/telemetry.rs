//! Zero-dependency evaluation telemetry: counters, monotonic timers,
//! per-stage fixpoint traces, and a hand-rolled JSON-lines emitter.
//!
//! The paper's empirical story is about *how* forward chaining unfolds —
//! stages of the immediate consequence operator, deltas shrinking to a
//! fixpoint, divergence cycles in noninflationary runs. The engines
//! record that unfolding into an [`EvalTrace`] through a [`Telemetry`]
//! handle threaded through their options. A disabled handle (the
//! default) is a no-op sink: the hot join counters are plain unguarded
//! integer adds on the index cache, and everything stage-granular is
//! skipped behind a single `Option` check per stage.
//!
//! Nothing here depends on `serde`/`tracing` — the offline build cannot
//! fetch them, so the JSON emitter and table renderer are hand-rolled.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::json::Json;
use crate::trace::Tracer;
use crate::{Interner, Symbol};

/// Join-work counters, accumulated branch-free on the index cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Number of index probes performed.
    pub probes: u64,
    /// Total tuples returned by those probes.
    pub probe_tuples: u64,
    /// Number of hash indexes built from scratch for a fresh cache entry
    /// (includes the per-round delta indexes, which are built fresh by
    /// design and stay proportional to the round's delta).
    pub index_builds: u64,
    /// Total tuples scanned while building or rebuilding indexes.
    pub indexed_tuples: u64,
    /// Cache probes answered by an index that was already current.
    pub index_hits: u64,
    /// Stale indexes refreshed incrementally by absorbing new tuples.
    pub index_appends: u64,
    /// Total tuples appended by those incremental absorbs.
    pub appended_tuples: u64,
    /// Stale indexes that had to be rebuilt from scratch (the generation
    /// delta could not be reconstructed — removals, clears, diverged
    /// clones). On append-only fixpoints this stays bounded by the number
    /// of relations, not the number of rounds.
    pub index_rebuilds: u64,
}

impl JoinCounters {
    /// Component-wise difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &JoinCounters) -> JoinCounters {
        JoinCounters {
            probes: self.probes - earlier.probes,
            probe_tuples: self.probe_tuples - earlier.probe_tuples,
            index_builds: self.index_builds - earlier.index_builds,
            indexed_tuples: self.indexed_tuples - earlier.indexed_tuples,
            index_hits: self.index_hits - earlier.index_hits,
            index_appends: self.index_appends - earlier.index_appends,
            appended_tuples: self.appended_tuples - earlier.appended_tuples,
            index_rebuilds: self.index_rebuilds - earlier.index_rebuilds,
        }
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: &JoinCounters) {
        self.probes += other.probes;
        self.probe_tuples += other.probe_tuples;
        self.index_builds += other.index_builds;
        self.indexed_tuples += other.indexed_tuples;
        self.index_hits += other.index_hits;
        self.index_appends += other.index_appends;
        self.appended_tuples += other.appended_tuples;
        self.index_rebuilds += other.index_rebuilds;
    }
}

/// One application of the immediate consequence operator (or the
/// engine's closest analogue: a semi-naive round, an alternating-fixpoint
/// iterate, a nondeterministic firing step…).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageRecord {
    /// 1-based stage index within the run.
    pub stage: usize,
    /// Wall time of the stage, in nanoseconds.
    pub wall_nanos: u64,
    /// Facts newly added this stage.
    pub facts_added: usize,
    /// Facts removed this stage (noninflationary semantics only).
    pub facts_removed: usize,
    /// Rule-body matches evaluated this stage (including rederivations).
    pub rules_fired: u64,
    /// Per-predicate cardinality of this stage's delta (added facts).
    pub delta: Vec<(Symbol, usize)>,
    /// Join work performed during this stage.
    pub joins: JoinCounters,
    /// Logical instance bytes at the stage boundary (the
    /// [`crate::space`] model; `0` when the engine does not account).
    pub bytes: u64,
}

/// Snapshot of the noninflationary divergence detector at run end.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DivergenceSnapshot {
    /// Detector kind: `"exact"`, `"fingerprint"`, or `"off"`.
    pub detector: String,
    /// Distinct states remembered when the run ended.
    pub states_seen: usize,
    /// Stage at which a cycle was detected, if one was.
    pub diverged_stage: Option<usize>,
    /// Period of the detected cycle, if one was.
    pub period: Option<usize>,
}

/// A full evaluation trace: per-stage records plus run-level summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalTrace {
    /// Engine that produced the trace (`"naive"`, `"seminaive"`, …).
    pub engine: String,
    /// Per-stage records, in order.
    pub stages: Vec<StageRecord>,
    /// Total wall time of the run, in nanoseconds.
    pub total_wall_nanos: u64,
    /// Largest number of live facts observed, sampled after every rule
    /// application (instance plus any pending delta buffer), so the
    /// value is a true high-water mark rather than a stage-boundary
    /// sample.
    pub peak_facts: usize,
    /// Instance size at run end.
    pub final_facts: usize,
    /// High-water mark of live logical bytes (the [`crate::space`]
    /// model), sampled alongside `peak_facts`.
    pub bytes_peak: u64,
    /// Logical instance bytes at run end.
    pub bytes_final: u64,
    /// Total rule-body matches across stages.
    pub rules_fired: u64,
    /// Total join work across stages.
    pub joins: JoinCounters,
    /// Scans the planner narrowed to index probes via
    /// sideways-information-passing (summed across strata). A plan
    /// property, so deterministic at any thread count.
    pub plan_joins_pruned: u64,
    /// Plan-arena subplan nodes shared between rules (summed across
    /// strata). Deterministic, like `plan_joins_pruned`.
    pub subplans_shared: u64,
    /// Tuples withdrawn by the incremental engine's overdelete pass
    /// (DRed overestimate), summed across polls. Zero for batch runs.
    pub ivm_overdeleted: u64,
    /// Withdrawn tuples the incremental engine restored from
    /// alternative support, summed across polls. Zero for batch runs.
    pub ivm_rederived: u64,
    /// Divergence-detector snapshot (noninflationary runs).
    pub divergence: Option<DivergenceSnapshot>,
    /// Values invented by the Datalog¬new engine.
    pub invented: usize,
    /// Candidate count at each nondeterministic choice point.
    pub choice_points: Vec<usize>,
    /// While-language loop iterations executed.
    pub loop_iterations: usize,
    /// Interner size after the run (set by the frontend, which owns it).
    pub interner_symbols: usize,
    /// Worker threads the evaluation ran with (`0` = the engine does not
    /// support the option; `1` = sequential; `>1` = parallel rounds).
    pub threads: usize,
    /// Free-form annotations (strata, rewrites, candidate models…).
    pub notes: Vec<String>,
}

impl EvalTrace {
    /// Total facts added across all stages.
    pub fn total_facts_added(&self) -> usize {
        self.stages.iter().map(|s| s.facts_added).sum()
    }

    /// Fills the run-level summary from the stage records: total wall
    /// time, final/peak sizes, and the stage sums for rules fired and
    /// join work.
    pub fn finish(&mut self, total_wall_nanos: u64, final_facts: usize) {
        self.total_wall_nanos = total_wall_nanos;
        self.final_facts = final_facts;
        self.peak_facts = self.peak_facts.max(final_facts);
        self.bytes_peak = self.bytes_peak.max(self.bytes_final);
        self.rules_fired = self.stages.iter().map(|s| s.rules_fired).sum();
        let mut joins = JoinCounters::default();
        for s in &self.stages {
            joins.absorb(&s.joins);
        }
        self.joins = joins;
    }

    /// Renders the trace as JSON lines: one `run` object followed by one
    /// `stage` object per stage. Predicate names resolve via `interner`.
    pub fn to_json_lines(&self, interner: &Interner) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"run\"");
        push_json_str(&mut out, "engine", &self.engine);
        let _ = write!(
            out,
            ",\"stages\":{},\"total_wall_nanos\":{},\"peak_facts\":{},\"final_facts\":{}",
            self.stages.len(),
            self.total_wall_nanos,
            self.peak_facts,
            self.final_facts
        );
        let _ = write!(
            out,
            ",\"bytes_peak\":{},\"bytes_final\":{}",
            self.bytes_peak, self.bytes_final
        );
        let _ = write!(out, ",\"rules_fired\":{}", self.rules_fired);
        let _ = write!(
            out,
            ",\"plan_joins_pruned\":{},\"subplans_shared\":{}",
            self.plan_joins_pruned, self.subplans_shared
        );
        let _ = write!(
            out,
            ",\"ivm_overdeleted\":{},\"ivm_rederived\":{}",
            self.ivm_overdeleted, self.ivm_rederived
        );
        out.push_str(",\"joins\":");
        push_joins(&mut out, &self.joins);
        out.push_str(",\"divergence\":");
        match &self.divergence {
            None => out.push_str("null"),
            Some(d) => {
                out.push('{');
                let _ = write!(out, "\"detector\":\"{}\"", json_escape(&d.detector));
                let _ = write!(out, ",\"states_seen\":{}", d.states_seen);
                match d.diverged_stage {
                    Some(s) => {
                        let _ = write!(out, ",\"diverged_stage\":{s}");
                    }
                    None => out.push_str(",\"diverged_stage\":null"),
                }
                match d.period {
                    Some(p) => {
                        let _ = write!(out, ",\"period\":{p}");
                    }
                    None => out.push_str(",\"period\":null"),
                }
                out.push('}');
            }
        }
        let _ = write!(
            out,
            ",\"invented\":{},\"loop_iterations\":{},\"interner_symbols\":{},\"threads\":{}",
            self.invented, self.loop_iterations, self.interner_symbols, self.threads
        );
        out.push_str(",\"choice_points\":[");
        for (i, c) in self.choice_points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(n));
        }
        out.push_str("]}\n");

        for s in &self.stages {
            let _ = write!(
                out,
                "{{\"type\":\"stage\",\"stage\":{},\"wall_nanos\":{},\"facts_added\":{},\
                 \"facts_removed\":{},\"rules_fired\":{},\"bytes\":{}",
                s.stage, s.wall_nanos, s.facts_added, s.facts_removed, s.rules_fired, s.bytes
            );
            out.push_str(",\"delta\":{");
            // Name order, matching the object normalization applied by
            // `from_json_lines` — keeps the round-trip exact.
            let mut delta: Vec<(&str, usize)> = s
                .delta
                .iter()
                .map(|(pred, n)| (interner.name(*pred), *n))
                .collect();
            delta.sort_unstable();
            for (i, (pred, n)) in delta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(pred), n);
            }
            out.push_str("},\"joins\":");
            push_joins(&mut out, &s.joins);
            out.push_str("}\n");
        }
        out
    }

    /// Parses a trace back from its [`to_json_lines`](Self::to_json_lines)
    /// rendering. Predicate names re-intern through `interner`; the
    /// result compares equal (`PartialEq`) to the emitted trace whenever
    /// the same interner produced the names, so the round-trip drift
    /// test in `crates/common/tests/format_roundtrip.rs` can hold the
    /// emitter and this parser to one schema.
    pub fn from_json_lines(text: &str, interner: &mut Interner) -> Result<EvalTrace, String> {
        let joins_of = |v: &Json, what: &str| -> Result<JoinCounters, String> {
            let field = |key: &str| {
                v.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{what}: missing joins.{key}"))
            };
            Ok(JoinCounters {
                probes: field("probes")?,
                probe_tuples: field("probe_tuples")?,
                index_builds: field("index_builds")?,
                indexed_tuples: field("indexed_tuples")?,
                index_hits: field("index_hits")?,
                index_appends: field("index_appends")?,
                appended_tuples: field("appended_tuples")?,
                index_rebuilds: field("index_rebuilds")?,
            })
        };

        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let run_line = lines.next().ok_or("empty trace")?;
        let run = Json::parse(run_line).map_err(|e| format!("run line: {e}"))?;
        if run.get("type").and_then(Json::as_str) != Some("run") {
            return Err("first line is not a `run` object".into());
        }
        let req_u64 = |key: &str| {
            run.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("run: missing `{key}`"))
        };
        let req_usize = |key: &str| {
            run.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("run: missing `{key}`"))
        };
        let mut trace = EvalTrace {
            engine: run
                .get("engine")
                .and_then(Json::as_str)
                .ok_or("run: missing `engine`")?
                .to_string(),
            total_wall_nanos: req_u64("total_wall_nanos")?,
            peak_facts: req_usize("peak_facts")?,
            final_facts: req_usize("final_facts")?,
            rules_fired: req_u64("rules_fired")?,
            plan_joins_pruned: req_u64("plan_joins_pruned")?,
            subplans_shared: req_u64("subplans_shared")?,
            ivm_overdeleted: req_u64("ivm_overdeleted")?,
            ivm_rederived: req_u64("ivm_rederived")?,
            bytes_peak: req_u64("bytes_peak")?,
            bytes_final: req_u64("bytes_final")?,
            joins: joins_of(run.get("joins").ok_or("run: missing `joins`")?, "run")?,
            invented: req_usize("invented")?,
            loop_iterations: req_usize("loop_iterations")?,
            interner_symbols: req_usize("interner_symbols")?,
            threads: req_usize("threads")?,
            ..EvalTrace::default()
        };
        trace.divergence = match run.get("divergence").ok_or("run: missing `divergence`")? {
            Json::Null => None,
            d => Some(DivergenceSnapshot {
                detector: d
                    .get("detector")
                    .and_then(Json::as_str)
                    .ok_or("divergence: missing `detector`")?
                    .to_string(),
                states_seen: d
                    .get("states_seen")
                    .and_then(Json::as_usize)
                    .ok_or("divergence: missing `states_seen`")?,
                diverged_stage: d.get("diverged_stage").and_then(Json::as_usize),
                period: d.get("period").and_then(Json::as_usize),
            }),
        };
        for c in run
            .get("choice_points")
            .and_then(Json::as_arr)
            .ok_or("run: missing `choice_points`")?
        {
            trace
                .choice_points
                .push(c.as_usize().ok_or("choice_points: non-integer entry")?);
        }
        for n in run
            .get("notes")
            .and_then(Json::as_arr)
            .ok_or("run: missing `notes`")?
        {
            trace
                .notes
                .push(n.as_str().ok_or("notes: non-string entry")?.to_string());
        }
        let declared_stages = req_usize("stages")?;

        for line in lines {
            let what = "stage line";
            let stage = Json::parse(line).map_err(|e| format!("{what}: {e}"))?;
            if stage.get("type").and_then(Json::as_str) != Some("stage") {
                return Err(format!("{what}: not a `stage` object"));
            }
            let mut record = StageRecord {
                stage: stage
                    .get("stage")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("{what}: missing `stage`"))?,
                wall_nanos: stage
                    .get("wall_nanos")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{what}: missing `wall_nanos`"))?,
                facts_added: stage
                    .get("facts_added")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("{what}: missing `facts_added`"))?,
                facts_removed: stage
                    .get("facts_removed")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("{what}: missing `facts_removed`"))?,
                rules_fired: stage
                    .get("rules_fired")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{what}: missing `rules_fired`"))?,
                bytes: stage
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{what}: missing `bytes`"))?,
                joins: joins_of(
                    stage
                        .get("joins")
                        .ok_or_else(|| format!("{what}: missing `joins`"))?,
                    what,
                )?,
                ..StageRecord::default()
            };
            match stage.get("delta") {
                Some(Json::Obj(members)) => {
                    for (pred, n) in members {
                        record.delta.push((
                            interner.intern(pred),
                            n.as_usize()
                                .ok_or_else(|| format!("{what}: non-integer delta"))?,
                        ));
                    }
                }
                _ => return Err(format!("{what}: missing `delta` object")),
            }
            trace.stages.push(record);
        }
        if trace.stages.len() != declared_stages {
            return Err(format!(
                "run declares {declared_stages} stages but {} stage lines follow",
                trace.stages.len()
            ));
        }
        Ok(trace)
    }

    /// Renders the trace as a human-readable statistics table.
    pub fn render_table(&self, interner: &Interner) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "engine: {}   stages: {}   wall: {}{}",
            self.engine,
            self.stages.len(),
            fmt_nanos(self.total_wall_nanos),
            if self.threads > 1 {
                format!("   threads: {}", self.threads)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "facts: {} final (peak {})   rules fired: {}   probes: {} ({} tuples)   \
             index builds: {} ({} tuples)",
            self.final_facts,
            self.peak_facts,
            self.rules_fired,
            self.joins.probes,
            self.joins.probe_tuples,
            self.joins.index_builds,
            self.joins.indexed_tuples
        );
        if self.bytes_final > 0 || self.bytes_peak > 0 {
            let _ = writeln!(
                out,
                "space: {} final (peak {})",
                crate::space::fmt_bytes(self.bytes_final),
                crate::space::fmt_bytes(self.bytes_peak)
            );
        }
        let lookups = self.joins.index_hits
            + self.joins.index_appends
            + self.joins.index_builds
            + self.joins.index_rebuilds;
        if lookups > 0 {
            let reused = self.joins.index_hits + self.joins.index_appends;
            let _ = writeln!(
                out,
                "index cache: {} hits, {} appends ({} tuples), {} rebuilds   reuse: {:.1}%",
                self.joins.index_hits,
                self.joins.index_appends,
                self.joins.appended_tuples,
                self.joins.index_rebuilds,
                100.0 * reused as f64 / lookups as f64
            );
        }
        if self.plan_joins_pruned > 0 || self.subplans_shared > 0 {
            let _ = writeln!(
                out,
                "planner: {} joins pruned to index probes, {} subplans shared",
                self.plan_joins_pruned, self.subplans_shared
            );
        }
        if self.invented > 0 {
            let _ = writeln!(out, "invented values: {}", self.invented);
        }
        if self.loop_iterations > 0 {
            let _ = writeln!(out, "loop iterations: {}", self.loop_iterations);
        }
        if !self.choice_points.is_empty() {
            let _ = writeln!(
                out,
                "choice points: {} (candidates per step: {})",
                self.choice_points.len(),
                self.choice_points
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        if let Some(d) = &self.divergence {
            let verdict = match (d.diverged_stage, d.period) {
                (Some(s), Some(p)) => format!("cycle at stage {s}, period {p}"),
                _ => "no cycle".to_string(),
            };
            let _ = writeln!(
                out,
                "divergence detector: {} ({} states seen, {verdict})",
                d.detector, d.states_seen
            );
        }
        if self.interner_symbols > 0 {
            let _ = writeln!(out, "interner symbols: {}", self.interner_symbols);
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>8} {:>12}  delta",
                "stage", "added", "removed", "fired", "wall"
            );
            for s in &self.stages {
                let delta = s
                    .delta
                    .iter()
                    .map(|(pred, n)| format!("{}={}", interner.name(*pred), n))
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(
                    out,
                    "{:>5} {:>8} {:>8} {:>8} {:>12}  {}",
                    s.stage,
                    s.facts_added,
                    s.facts_removed,
                    s.rules_fired,
                    fmt_nanos(s.wall_nanos),
                    delta
                );
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// The top-`n` relations by cumulative delta tuples across stages —
    /// the cardinality-growth companion to the tracer's hottest-rules
    /// table: which relations' deltas dominated the run.
    pub fn fattest_deltas(&self, interner: &Interner, n: usize) -> String {
        let mut per: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
        for s in &self.stages {
            for (pred, added) in &s.delta {
                let e = per.entry(interner.name(*pred)).or_insert((0, 0));
                e.0 += added;
                e.1 += 1;
            }
        }
        let mut rows: Vec<(&str, usize, usize)> =
            per.into_iter().map(|(k, (t, r))| (k, t, r)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>10}",
            "fattest deltas", "tuples", "stages"
        );
        for (name, tuples, stages) in rows.into_iter().take(n) {
            let _ = writeln!(out, "{name:<24} {tuples:>12} {stages:>10}");
        }
        out
    }
}

fn push_joins(out: &mut String, j: &JoinCounters) {
    let _ = write!(
        out,
        "{{\"probes\":{},\"probe_tuples\":{},\"index_builds\":{},\"indexed_tuples\":{},\
         \"index_hits\":{},\"index_appends\":{},\"appended_tuples\":{},\"index_rebuilds\":{}}}",
        j.probes,
        j.probe_tuples,
        j.index_builds,
        j.indexed_tuples,
        j.index_hits,
        j.index_appends,
        j.appended_tuples,
        j.index_rebuilds
    );
}

fn push_json_str(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":\"{}\"", json_escape(value));
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// A monotonic timer that only reads the clock when telemetry is on.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A stopwatch that never reads the clock and reports 0.
    pub fn disabled() -> Self {
        Stopwatch(None)
    }

    /// Nanoseconds elapsed since creation (0 when disabled). Saturates
    /// at `u64::MAX` (≈ 584 years).
    pub fn nanos(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// A cheap, clonable handle to an optional [`EvalTrace`] sink.
///
/// Disabled (the default) it is a no-op: every recording method returns
/// immediately after one `Option` check — no lock is ever touched.
/// Enabled, it shares one mutex-guarded trace among all clones (the
/// handle is `Send + Sync`, so options structs carrying it can cross
/// into scoped worker threads), and it can be read back by whoever
/// created it. The lock is poison-tolerant: a panicking recorder leaves
/// a readable trace behind.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<EvalTrace>>>,
    tracer: Tracer,
}

impl Telemetry {
    /// The disabled (no-op) handle.
    pub fn off() -> Self {
        Telemetry {
            sink: None,
            tracer: Tracer::off(),
        }
    }

    /// An enabled handle with an empty trace (span tracing stays off —
    /// see [`with_tracer`](Self::with_tracer)).
    pub fn enabled() -> Self {
        Telemetry {
            sink: Some(Arc::new(Mutex::new(EvalTrace::default()))),
            tracer: Tracer::off(),
        }
    }

    /// This handle with the given span tracer attached. The tracer
    /// rides inside the telemetry handle through `EvalOptions` into
    /// every engine, so span emission needs no signature changes.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached span tracer (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Runs `f` on the trace if enabled; returns its result.
    pub fn with<R>(&self, f: impl FnOnce(&mut EvalTrace) -> R) -> Option<R> {
        self.sink
            .as_ref()
            .map(|cell| f(&mut cell.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Resets the trace and names the engine. Call at run entry.
    pub fn begin(&self, engine: &str) {
        self.with(|t| {
            *t = EvalTrace::default();
            t.engine = engine.to_string();
        });
    }

    /// Renames the engine without clearing the trace (wrapping engines
    /// such as magic-sets claim the inner engine's trace this way).
    pub fn rename(&self, engine: &str) {
        self.with(|t| t.engine = engine.to_string());
    }

    /// Appends a free-form note.
    pub fn note(&self, note: impl Into<String>) {
        self.with(|t| t.notes.push(note.into()));
    }

    /// Raises the live-size high-water marks (facts and logical bytes).
    /// Engines call this after every rule application with the total
    /// live footprint — instance plus any pending delta buffers — so
    /// `peak_facts`/`bytes_peak` are true peaks, not stage-boundary
    /// samples. Guard the (cheap) argument computation behind
    /// [`is_enabled`](Self::is_enabled) on hot paths.
    pub fn sample_peak(&self, live_facts: usize, live_bytes: usize) {
        self.with(|t| {
            t.peak_facts = t.peak_facts.max(live_facts);
            t.bytes_peak = t.bytes_peak.max(live_bytes as u64);
        });
    }

    /// A stopwatch that is live only when telemetry is enabled.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.sink.is_some() {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch::disabled()
        }
    }

    /// Fills the run-level summary (see [`EvalTrace::finish`]).
    pub fn finish(&self, sw: &Stopwatch, final_facts: usize) {
        let nanos = sw.nanos();
        self.with(|t| t.finish(nanos, final_facts));
    }

    /// Clones the current trace out of the handle, if enabled.
    pub fn snapshot(&self) -> Option<EvalTrace> {
        self.with(|t| t.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time guard: the handle must stay shareable across worker
    /// threads (it rides inside `EvalOptions` into `thread::scope`).
    #[test]
    fn telemetry_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Telemetry>();
        assert_sync::<EvalTrace>();
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        tel.begin("x");
        tel.note("ignored");
        assert_eq!(tel.with(|_| ()), None);
        assert!(tel.snapshot().is_none());
        assert_eq!(tel.stopwatch().nanos(), 0);
    }

    #[test]
    fn clones_share_one_trace() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.begin("seminaive");
        other.note("hello");
        let trace = tel.snapshot().unwrap();
        assert_eq!(trace.engine, "seminaive");
        assert_eq!(trace.notes, vec!["hello".to_string()]);
    }

    #[test]
    fn finish_sums_stages() {
        let tel = Telemetry::enabled();
        tel.begin("naive");
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: 1,
                facts_added: 3,
                rules_fired: 5,
                joins: JoinCounters {
                    probes: 2,
                    probe_tuples: 7,
                    ..Default::default()
                },
                ..Default::default()
            });
            t.stages.push(StageRecord {
                stage: 2,
                facts_added: 1,
                rules_fired: 4,
                joins: JoinCounters {
                    probes: 1,
                    probe_tuples: 1,
                    ..Default::default()
                },
                ..Default::default()
            });
        });
        tel.finish(&Stopwatch::disabled(), 10);
        let t = tel.snapshot().unwrap();
        assert_eq!(t.rules_fired, 9);
        assert_eq!(t.joins.probes, 3);
        assert_eq!(t.joins.probe_tuples, 8);
        assert_eq!(t.final_facts, 10);
        assert_eq!(t.total_facts_added(), 4);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_lines_shape() {
        let interner = Interner::new();
        let mut trace = EvalTrace {
            engine: "naive".into(),
            ..Default::default()
        };
        trace.stages.push(StageRecord {
            stage: 1,
            facts_added: 2,
            ..Default::default()
        });
        trace.finish(42, 2);
        let text = trace.to_json_lines(&interner);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"run\""));
        assert!(lines[0].contains("\"engine\":\"naive\""));
        assert!(lines[1].starts_with("{\"type\":\"stage\""));
        assert!(lines[1].contains("\"facts_added\":2"));
    }

    #[test]
    fn table_mentions_stages_and_engine() {
        let mut interner = Interner::new();
        let t_sym = interner.intern("T");
        let mut trace = EvalTrace {
            engine: "seminaive".into(),
            ..Default::default()
        };
        trace.stages.push(StageRecord {
            stage: 1,
            facts_added: 4,
            delta: vec![(t_sym, 4)],
            ..Default::default()
        });
        trace.finish(1_500, 4);
        let table = trace.render_table(&interner);
        assert!(table.contains("engine: seminaive"));
        assert!(table.contains("T=4"));
        assert!(table.contains("1.5µs"));
    }
}

//! Space accounting: a deterministic logical-byte model for the
//! storage types, and the [`SpaceReport`] tree surfaced by the CLI's
//! `--memstats`, the REPL's `.mem`, and the bench harness.
//!
//! The model counts **logical** bytes — element counts multiplied by
//! fixed per-element sizes — and never allocator-dependent quantities
//! (`Vec::capacity`, hash-table load factors, malloc headers). That
//! trade keeps reports exactly reproducible across runs, machines, and
//! worker-thread counts: the parallel semi-naive path produces the same
//! committed segments per round as the sequential one, so the same
//! counts yield the same bytes, and `scripts/check.sh` can diff the
//! rendered tree byte-for-byte at `--threads 1` vs `--threads 4`.
//!
//! What counts as a byte (see DESIGN.md, "Space accounting"):
//!
//! * a [`Value`](crate::value::Value) slot is [`VALUE_BYTES`] (the
//!   `Copy` enum, padded);
//! * a stored tuple is [`TUPLE_HEADER_BYTES`] for its inline
//!   `Box<[Value]>` handle plus one value slot per column
//!   ([`tuple_bytes`]);
//! * a relation owns one stored-tuple copy per frozen-segment posting,
//!   one per recent-tail posting, and one per membership-set entry
//!   (the set really does hold its own clone of every tuple);
//! * an index owns one boxed key per bucket plus one stored-tuple copy
//!   per posting;
//! * the interner owns every name twice (the id-to-name vector and the
//!   name-to-id map key) plus one [`SYMBOL_BYTES`] id per entry.
//!
//! `Arc`-shared frozen segments are charged to every relation that
//! holds them: the model is about attribution, not unique ownership,
//! and double-charging clones keeps per-relation numbers additive.

use std::fmt::Write as _;

use crate::instance::Instance;
use crate::interner::Interner;

/// Logical bytes of one [`Value`](crate::value::Value) slot (the
/// 12-byte `Copy` enum padded to 16 in tuples and environments).
pub const VALUE_BYTES: usize = 16;

/// Inline handle of a stored [`Tuple`](crate::tuple::Tuple): the
/// two-word `Box<[Value]>` fat pointer.
pub const TUPLE_HEADER_BYTES: usize = 16;

/// Inline handle of an interned string (`Box<str>` fat pointer).
pub const STR_HEADER_BYTES: usize = 16;

/// One interned [`Symbol`](crate::interner::Symbol) id.
pub const SYMBOL_BYTES: usize = 4;

/// Logical bytes of one stored tuple of the given arity: the inline
/// handle plus one value slot per column.
pub const fn tuple_bytes(arity: usize) -> usize {
    TUPLE_HEADER_BYTES + arity * VALUE_BYTES
}

/// Types that can report their logical footprint under the model above.
///
/// Implementations must be *deterministic in the contents*: two objects
/// holding the same elements report the same bytes regardless of how
/// they were built, which thread built them, or what the allocator did.
pub trait HeapSize {
    /// Logical bytes attributed to this object (inline handle included
    /// for element types such as tuples; containers sum their elements).
    fn heap_bytes(&self) -> usize;
}

/// One node of a [`SpaceReport`]: a labelled byte gauge with an item
/// count and optional children.
///
/// `bytes` of a branch always equals the sum over its children (that is
/// the additivity invariant `check_additive` verifies); `items` is the
/// *logical* count for the label (e.g. a relation's cardinality), which
/// intentionally need not be the child sum — a relation stores each
/// tuple both in a segment and in its membership set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceNode {
    /// Human label (`T/2`, `segment 0`, `interner`…).
    pub label: String,
    /// Logical item count for this label (tuples, symbols, …).
    pub items: u64,
    /// Logical bytes attributed to this subtree.
    pub bytes: u64,
    /// Breakdown, when there is one.
    pub children: Vec<SpaceNode>,
}

impl SpaceNode {
    /// A leaf gauge.
    pub fn leaf(label: impl Into<String>, items: u64, bytes: u64) -> SpaceNode {
        SpaceNode {
            label: label.into(),
            items,
            bytes,
            children: Vec::new(),
        }
    }

    /// A branch whose bytes are the sum over `children`; `items` is
    /// supplied by the caller (see the type-level invariant note).
    pub fn branch(label: impl Into<String>, items: u64, children: Vec<SpaceNode>) -> SpaceNode {
        let bytes = children.iter().map(|c| c.bytes).sum();
        SpaceNode {
            label: label.into(),
            items,
            bytes,
            children,
        }
    }

    /// Verifies the additivity invariant recursively: every branch's
    /// bytes equal the sum of its children's.
    pub fn check_additive(&self) -> Result<(), String> {
        if !self.children.is_empty() {
            let sum: u64 = self.children.iter().map(|c| c.bytes).sum();
            if sum != self.bytes {
                return Err(format!(
                    "space node `{}` reports {} bytes but its children sum to {sum}",
                    self.label, self.bytes
                ));
            }
            for c in &self.children {
                c.check_additive()?;
            }
        }
        Ok(())
    }
}

/// The full space breakdown of an evaluation: instance relations (each
/// split into frozen segments, recent tail, and membership set) plus
/// the interner, rendered as an indented tree with deterministic byte
/// gauges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceReport {
    /// The tree root (label `space`).
    pub root: SpaceNode,
}

impl SpaceReport {
    /// Accounts `instance` and `interner` under the logical-byte model.
    /// Relations appear in symbol order, so two instances with the same
    /// contents render identically.
    pub fn for_instance(instance: &Instance, interner: &Interner) -> SpaceReport {
        let relations: Vec<SpaceNode> = instance
            .iter()
            .map(|(sym, rel)| rel.space_node(interner.name(sym)))
            .collect();
        let fact_count = instance.fact_count() as u64;
        let relations = SpaceNode::branch("relations", fact_count, relations);
        let interner_node = SpaceNode::leaf(
            "interner",
            interner.len() as u64,
            interner.heap_bytes() as u64,
        );
        SpaceReport {
            root: SpaceNode::branch("space", fact_count, vec![relations, interner_node]),
        }
    }

    /// Total logical bytes in the report.
    pub fn total_bytes(&self) -> u64 {
        self.root.bytes
    }

    /// Logical bytes of the `relations` subtree (excluding the
    /// interner) — the value exported as `unchained_relation_bytes`.
    pub fn relation_bytes(&self) -> u64 {
        self.root
            .children
            .iter()
            .find(|c| c.label == "relations")
            .map_or(0, |c| c.bytes)
    }

    /// Verifies the additivity invariant over the whole tree.
    pub fn check_additive(&self) -> Result<(), String> {
        self.root.check_additive()
    }

    /// Renders the indented breakdown tree plus a summary line stating
    /// the total and the additivity verdict (`additive: ok` is what the
    /// `scripts/check.sh` memstats gate greps for).
    pub fn render(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, node: &SpaceNode, depth: usize) {
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{}", node.label);
            let _ = writeln!(
                out,
                "{label:<32} {:>10} {:>10}",
                fmt_bytes(node.bytes),
                node.items
            );
            for c in &node.children {
                walk(out, c, depth + 1);
            }
        }
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>10}",
            "space breakdown", "bytes", "items"
        );
        walk(&mut out, &self.root, 0);
        let verdict = match self.check_additive() {
            Ok(()) => "additive: ok".to_string(),
            Err(e) => format!("additive: BROKEN ({e})"),
        };
        let _ = writeln!(
            out,
            "space total: {} ({} bytes, {verdict})",
            fmt_bytes(self.root.bytes),
            self.root.bytes
        );
        out
    }

    /// The top-`n` relations by bytes, rendered in the same spirit as
    /// the tracer's `hottest rules` table.
    pub fn fattest_relations(&self, n: usize) -> String {
        let mut rels: Vec<&SpaceNode> = self
            .root
            .children
            .iter()
            .filter(|c| c.label == "relations")
            .flat_map(|c| c.children.iter())
            .collect();
        rels.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.label.cmp(&b.label)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>10}",
            "fattest relations", "bytes", "tuples"
        );
        for r in rels.iter().take(n) {
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>10}",
                r.label,
                fmt_bytes(r.bytes),
                r.items
            );
        }
        out
    }
}

/// Formats a byte count with an adaptive binary unit.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;

    #[test]
    fn tuple_model_counts_header_plus_values() {
        assert_eq!(tuple_bytes(0), TUPLE_HEADER_BYTES);
        assert_eq!(tuple_bytes(2), TUPLE_HEADER_BYTES + 2 * VALUE_BYTES);
        let t = Tuple::from([Value::Int(1), Value::Int(2)]);
        assert_eq!(t.heap_bytes(), tuple_bytes(2));
        assert_eq!(Value::Int(7).heap_bytes(), VALUE_BYTES);
    }

    #[test]
    fn branch_sums_children_and_additivity_is_checked() {
        let ok = SpaceNode::branch(
            "parent",
            3,
            vec![SpaceNode::leaf("a", 1, 10), SpaceNode::leaf("b", 2, 20)],
        );
        assert_eq!(ok.bytes, 30);
        assert!(ok.check_additive().is_ok());
        let mut broken = ok.clone();
        broken.bytes = 31;
        let err = broken.check_additive().unwrap_err();
        assert!(err.contains("parent"), "{err}");
    }

    #[test]
    fn report_renders_tree_and_fattest_table() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let t = interner.intern("T");
        let mut inst = Instance::new();
        for k in 0..4 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst.insert_fact(t, Tuple::from([Value::Int(0), Value::Int(1)]));
        let report = SpaceReport::for_instance(&inst, &interner);
        assert!(report.check_additive().is_ok());
        assert!(report.total_bytes() > 0);
        assert!(report.relation_bytes() > 0);
        assert!(report.relation_bytes() < report.total_bytes());
        let rendered = report.render();
        assert!(rendered.contains("additive: ok"), "{rendered}");
        assert!(rendered.contains("G/2"), "{rendered}");
        assert!(rendered.contains("interner"), "{rendered}");
        let fattest = report.fattest_relations(5);
        let g_line = fattest.lines().find(|l| l.starts_with("G/2")).unwrap();
        let t_line = fattest.lines().find(|l| l.starts_with("T/2")).unwrap();
        let g_pos = fattest.find(g_line).unwrap();
        let t_pos = fattest.find(t_line).unwrap();
        assert!(g_pos < t_pos, "G is fatter than T:\n{fattest}");
    }

    #[test]
    fn report_is_deterministic_in_contents() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let build = |order: &[i64]| {
            let mut inst = Instance::new();
            for &k in order {
                inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
            }
            inst.relation_mut(g).unwrap().commit();
            inst
        };
        let a = SpaceReport::for_instance(&build(&[1, 2, 3]), &interner);
        let b = SpaceReport::for_instance(&build(&[3, 1, 2]), &interner);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(1023), "1023B");
        assert_eq!(fmt_bytes(1536), "1.5KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
    }
}

//! Relation and database schemas.

use crate::interner::{Interner, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// A relation schema: a relation symbol together with an arity.
///
/// We use positional attributes (`0..arity`), the standard choice for
/// Datalog implementations; the paper's named-attribute formulation is
/// isomorphic to this for a fixed attribute order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelationSchema {
    /// The relation symbol.
    pub name: Symbol,
    /// Number of attributes.
    pub arity: usize,
}

impl RelationSchema {
    /// Creates a schema.
    pub fn new(name: Symbol, arity: usize) -> Self {
        RelationSchema { name, arity }
    }
}

/// A database schema: a finite set of relation schemas, at most one per
/// relation symbol.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<Symbol, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or confirms) a relation schema. Returns an error message if
    /// the symbol is already declared with a different arity.
    pub fn declare(&mut self, name: Symbol, arity: usize) -> Result<(), ArityConflict> {
        match self.relations.insert(name, arity) {
            Some(prev) if prev != arity => {
                // Restore the previous declaration before failing.
                self.relations.insert(name, prev);
                Err(ArityConflict {
                    name,
                    declared: prev,
                    conflicting: arity,
                })
            }
            _ => Ok(()),
        }
    }

    /// The arity of `name`, if declared.
    pub fn arity(&self, name: Symbol) -> Option<usize> {
        self.relations.get(&name).copied()
    }

    /// Whether `name` is declared.
    pub fn contains(&self, name: Symbol) -> bool {
        self.relations.contains_key(&name)
    }

    /// Iterates over `(symbol, arity)` pairs in deterministic (symbol id)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.relations.iter().map(|(&s, &a)| (s, a))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Union of two schemas. Fails on arity conflicts.
    pub fn union(&self, other: &Schema) -> Result<Schema, ArityConflict> {
        let mut out = self.clone();
        for (name, arity) in other.iter() {
            out.declare(name, arity)?;
        }
        Ok(out)
    }

    /// Renders the schema for humans.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplaySchema<'a> {
        DisplaySchema {
            schema: self,
            interner,
        }
    }
}

/// Error: one relation symbol declared with two different arities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArityConflict {
    /// The conflicting symbol.
    pub name: Symbol,
    /// Arity previously declared.
    pub declared: usize,
    /// Arity of the rejected new declaration.
    pub conflicting: usize,
}

impl fmt::Display for ArityConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relation {:?} declared with arity {} but used with arity {}",
            self.name, self.declared, self.conflicting
        )
    }
}

impl std::error::Error for ArityConflict {}

/// Helper returned by [`Schema::display`].
pub struct DisplaySchema<'a> {
    schema: &'a Schema,
    interner: &'a Interner,
}

impl fmt::Display for DisplaySchema<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, arity) in self.schema.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", self.interner.name(name), arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_query() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut s = Schema::new();
        s.declare(g, 2).unwrap();
        assert_eq!(s.arity(g), Some(2));
        assert!(s.contains(g));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn redeclaration_same_arity_ok() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut s = Schema::new();
        s.declare(g, 2).unwrap();
        s.declare(g, 2).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn arity_conflict_detected_and_state_preserved() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut s = Schema::new();
        s.declare(g, 2).unwrap();
        let err = s.declare(g, 3).unwrap_err();
        assert_eq!(err.declared, 2);
        assert_eq!(err.conflicting, 3);
        // The original declaration survives.
        assert_eq!(s.arity(g), Some(2));
    }

    #[test]
    fn union_merges_and_detects_conflicts() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let t = i.intern("T");
        let mut a = Schema::new();
        a.declare(g, 2).unwrap();
        let mut b = Schema::new();
        b.declare(t, 2).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);

        let mut c = Schema::new();
        c.declare(g, 1).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn display_format() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut s = Schema::new();
        s.declare(g, 2).unwrap();
        assert_eq!(s.display(&i).to_string(), "G/2");
    }
}

//! Database instances.

use crate::hash::{hash_one, FxHashMap, FxHashSet};
use crate::interner::{Interner, Symbol};
use crate::relation::{Generation, Relation};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// An instance over a database schema: a mapping from relation symbols to
/// finite relations.
///
/// Stored as a `BTreeMap` so iteration order (and hence printing,
/// fingerprint composition, and exhaustive-search traversal order in the
/// nondeterministic engines) is deterministic.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Instance {
    relations: BTreeMap<Symbol, Relation>,
}

impl Instance {
    /// Creates an empty instance (no relations at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an instance with an empty relation for every schema entry.
    pub fn empty_of(schema: &Schema) -> Self {
        let mut inst = Instance::new();
        for (name, arity) in schema.iter() {
            inst.relations.insert(name, Relation::new(arity));
        }
        inst
    }

    /// The relation for `name`, if present.
    pub fn relation(&self, name: Symbol) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// Mutable access to the relation for `name`, if present.
    pub fn relation_mut(&mut self, name: Symbol) -> Option<&mut Relation> {
        self.relations.get_mut(&name)
    }

    /// The relation for `name`, creating an empty relation of the given
    /// arity if absent.
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn ensure(&mut self, name: Symbol, arity: usize) -> &mut Relation {
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(
            rel.arity(),
            arity,
            "relation ensured with conflicting arity"
        );
        rel
    }

    /// Inserts a fact. Creates the relation if needed.
    pub fn insert_fact(&mut self, name: Symbol, tuple: Tuple) -> bool {
        let arity = tuple.arity();
        self.ensure(name, arity).insert(tuple)
    }

    /// Retracts a fact as a tombstone on its relation's generational
    /// storage (see [`Relation::retract`]). Returns `false` if the fact
    /// (or its relation) is absent.
    pub fn retract_fact(&mut self, name: Symbol, tuple: &Tuple) -> bool {
        self.relations
            .get_mut(&name)
            .is_some_and(|r| r.retract(tuple))
    }

    /// True iff the fact is present.
    pub fn contains_fact(&self, name: Symbol, tuple: &Tuple) -> bool {
        self.relations.get(&name).is_some_and(|r| r.contains(tuple))
    }

    /// Iterates over `(symbol, relation)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(&s, r)| (s, r))
    }

    /// The relation symbols present.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations.keys().copied()
    }

    /// Removes a relation entirely, returning it if present.
    pub fn remove_relation(&mut self, name: Symbol) -> Option<Relation> {
        self.relations.remove(&name)
    }

    /// Total number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True iff every relation is empty (or there are none).
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(Relation::is_empty)
    }

    /// The active domain `adom(I)`: every value occurring in some fact.
    pub fn adom(&self) -> FxHashSet<Value> {
        let mut out = FxHashSet::default();
        for rel in self.relations.values() {
            rel.collect_adom(&mut out);
        }
        out
    }

    /// The active domain as a sorted vector (deterministic iteration for
    /// the engines that valuate variables over the domain).
    pub fn adom_sorted(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.adom().into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Restricts the instance to the given symbols (the paper's "image of
    /// P restricted to the idb relations").
    pub fn project_schema(&self, keep: impl IntoIterator<Item = Symbol>) -> Instance {
        let keep: FxHashSet<Symbol> = keep.into_iter().collect();
        Instance {
            relations: self
                .relations
                .iter()
                .filter(|(s, _)| keep.contains(s))
                .map(|(&s, r)| (s, r.clone()))
                .collect(),
        }
    }

    /// A deterministic, order-independent fingerprint of the full state.
    ///
    /// Used by the noninflationary engine for divergence (cycle)
    /// detection and by the nondeterministic engines to memoize visited
    /// states. Empty relations contribute nothing, so an instance that
    /// merely *mentions* a relation fingerprints equal to one that omits
    /// it — which is the semantics we want for state comparison.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for (&name, rel) in &self.relations {
            if rel.is_empty() {
                continue;
            }
            let h = hash_one(&(name, rel.arity())) ^ rel.fingerprint();
            acc = acc.wrapping_add(hash_one(&h));
        }
        acc
    }

    /// True iff both instances hold exactly the same facts (empty
    /// relations are ignored, mirroring [`Instance::fingerprint`]).
    pub fn same_facts(&self, other: &Instance) -> bool {
        let nonempty = |i: &Instance| {
            i.relations
                .iter()
                .filter(|(_, r)| !r.is_empty())
                .map(|(&s, r)| (s, r.clone()))
                .collect::<BTreeMap<_, _>>()
        };
        nonempty(self) == nonempty(other)
    }

    /// Commits every relation's recent tail into a frozen stable segment
    /// (see [`Relation::commit`]); returns how many relations had anything
    /// to commit. Engines call this at round boundaries so the tuples of a
    /// round form whole segments and delta marks stay exact.
    pub fn commit_all(&mut self) -> usize {
        self.relations
            .values_mut()
            .map(|r| usize::from(r.commit()))
            .sum()
    }

    /// Total `(stable segments, uncommitted recent tuples)` across all
    /// relations — the storage-shape gauge surfaced by `--stats`.
    pub fn storage_stats(&self) -> (usize, usize) {
        self.relations.values().fold((0, 0), |(s, r), rel| {
            (s + rel.segment_count(), r + rel.recent_len())
        })
    }

    /// Renders the instance for humans (sorted, one fact per line).
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayInstance<'a> {
        DisplayInstance {
            instance: self,
            interner,
        }
    }
}

impl crate::space::HeapSize for Instance {
    /// Sum over the relations; cheap enough (counts only, no tuple
    /// walk) for engines to sample as a per-rule high-water mark.
    fn heap_bytes(&self) -> usize {
        self.relations
            .values()
            .map(crate::space::HeapSize::heap_bytes)
            .sum()
    }
}

/// A snapshot of every relation's [`Generation`] at a point in time — the
/// first-class delta mark that replaces threading an ad-hoc delta `Instance`
/// through the semi-naive engines.
///
/// Capture a handle *before* merging a round's new facts; afterwards,
/// `relation.iter_since(handle.mark(sym))` enumerates exactly that round's
/// delta. Relations that did not exist at capture time report the default
/// generation, which conservatively marks all their tuples as new.
#[derive(Clone, Debug, Default)]
pub struct DeltaHandle {
    marks: FxHashMap<Symbol, Generation>,
}

impl DeltaHandle {
    /// Captures the current generation of every relation in `instance`.
    pub fn capture(instance: &Instance) -> Self {
        DeltaHandle {
            marks: instance.iter().map(|(s, r)| (s, r.generation())).collect(),
        }
    }

    /// The captured mark for `name` (default generation if the relation was
    /// not present at capture time, meaning "everything is new").
    pub fn mark(&self, name: Symbol) -> Generation {
        self.marks.get(&name).copied().unwrap_or_default()
    }
}

/// Helper returned by [`Instance::display`].
pub struct DisplayInstance<'a> {
    instance: &'a Instance,
    interner: &'a Interner,
}

impl fmt::Display for DisplayInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in self.instance.iter() {
            for t in rel.sorted().iter() {
                if rel.arity() == 0 {
                    writeln!(f, "{}", self.interner.name(name))?;
                } else {
                    writeln!(
                        f,
                        "{}{}",
                        self.interner.name(name),
                        t.display(self.interner)
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Symbol, Symbol) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let t = i.intern("T");
        (i, g, t)
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    /// Compile-time guard: parallel workers share the instance (and the
    /// round's delta marks) read-only across threads.
    #[test]
    fn instance_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Instance>();
        assert_sync::<DeltaHandle>();
    }

    #[test]
    fn insert_and_contains() {
        let (_, g, _) = setup();
        let mut inst = Instance::new();
        assert!(inst.insert_fact(g, t2(1, 2)));
        assert!(!inst.insert_fact(g, t2(1, 2)));
        assert!(inst.contains_fact(g, &t2(1, 2)));
        assert!(!inst.contains_fact(g, &t2(2, 1)));
        assert_eq!(inst.fact_count(), 1);
    }

    #[test]
    fn retract_fact_tombstones_without_dropping_the_relation() {
        let (_, g, _) = setup();
        let mut inst = Instance::new();
        inst.insert_fact(g, t2(1, 2));
        inst.insert_fact(g, t2(3, 4));
        assert!(inst.retract_fact(g, &t2(1, 2)));
        assert!(!inst.retract_fact(g, &t2(1, 2)), "already gone");
        assert!(!inst.retract_fact(g, &t2(9, 9)), "never present");
        assert!(!inst.contains_fact(g, &t2(1, 2)));
        assert_eq!(inst.fact_count(), 1);
        assert!(inst.relation(g).is_some(), "relation survives emptying");
    }

    #[test]
    fn adom_collects_all_values() {
        let (_, g, t) = setup();
        let mut inst = Instance::new();
        inst.insert_fact(g, t2(1, 2));
        inst.insert_fact(t, t2(2, 3));
        let adom = inst.adom_sorted();
        assert_eq!(adom, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn fingerprint_ignores_empty_relations() {
        let (_, g, t) = setup();
        let mut a = Instance::new();
        a.insert_fact(g, t2(1, 2));
        let mut b = a.clone();
        b.ensure(t, 2); // empty relation, should not matter
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.same_facts(&b));
    }

    #[test]
    fn fingerprint_distinguishes_relation_names() {
        let (_, g, t) = setup();
        let mut a = Instance::new();
        a.insert_fact(g, t2(1, 2));
        let mut b = Instance::new();
        b.insert_fact(t, t2(1, 2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(!a.same_facts(&b));
    }

    #[test]
    fn project_schema_keeps_only_requested() {
        let (_, g, t) = setup();
        let mut inst = Instance::new();
        inst.insert_fact(g, t2(1, 2));
        inst.insert_fact(t, t2(3, 4));
        let proj = inst.project_schema([t]);
        assert!(proj.relation(g).is_none());
        assert!(proj.contains_fact(t, &t2(3, 4)));
    }

    #[test]
    fn empty_of_schema() {
        let (mut i, g, _) = setup();
        let mut schema = Schema::new();
        schema.declare(g, 2).unwrap();
        schema.declare(i.intern("P"), 1).unwrap();
        let inst = Instance::empty_of(&schema);
        assert_eq!(inst.relations.len(), 2);
        assert!(inst.is_empty());
    }

    #[test]
    fn display_sorted_output() {
        let (i, g, _) = setup();
        let mut inst = Instance::new();
        inst.insert_fact(g, t2(3, 4));
        inst.insert_fact(g, t2(1, 2));
        let shown = inst.display(&i).to_string();
        assert_eq!(shown, "G(1, 2)\nG(3, 4)\n");
    }

    #[test]
    fn zero_arity_display() {
        let mut i = Interner::new();
        let delay = i.intern("delay");
        let mut inst = Instance::new();
        inst.insert_fact(delay, Tuple::from([]));
        assert_eq!(inst.display(&i).to_string(), "delay\n");
    }

    #[test]
    #[should_panic(expected = "conflicting arity")]
    fn ensure_conflicting_arity_panics() {
        let (_, g, _) = setup();
        let mut inst = Instance::new();
        inst.ensure(g, 2);
        inst.ensure(g, 3);
    }
}

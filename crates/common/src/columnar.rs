//! Columnar tuple storage: flat, arity-strided value buffers.
//!
//! A frozen relation segment used to be a `Vec<Tuple>` — one heap
//! allocation (a `Box<[Value]>`) per tuple, pointer-chased on every
//! scan. [`ColumnSegment`] packs the same rows into a single contiguous
//! `Vec<Value>` in row-major order with a fixed stride (the arity):
//! row `i` occupies `values[i*arity .. (i+1)*arity]`. Scans walk one
//! allocation linearly, rows are handed out as borrowed `&[Value]`
//! slices, and freezing a tail drops the per-tuple boxes entirely.
//!
//! The logical space model (see [`crate::space`]) is unchanged: a
//! stored row still costs [`tuple_bytes`](crate::space::tuple_bytes)
//! of *logical* bytes regardless of the physical layout, so byte
//! gauges stay comparable across this representation change.

use crate::tuple::Tuple;
use crate::value::Value;

/// An immutable, row-major packed run of same-arity rows.
///
/// Arity 0 is explicitly supported (propositional relations): the value
/// buffer stays empty and the row count alone carries the cardinality,
/// with every row read back as the empty slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSegment {
    arity: usize,
    rows: usize,
    values: Vec<Value>,
}

impl ColumnSegment {
    /// Packs `tuples` into a segment. The tuples' order is preserved.
    ///
    /// # Panics
    /// Panics if a tuple's arity does not match.
    pub fn from_tuples<'a>(arity: usize, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut seg = ColumnSegment {
            arity,
            rows: 0,
            values: Vec::new(),
        };
        for t in tuples {
            assert_eq!(t.arity(), arity, "arity mismatch packing a segment");
            seg.values.extend_from_slice(t.values());
            seg.rows += 1;
        }
        seg.values.shrink_to_fit();
        seg
    }

    /// The row stride.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a borrowed slice.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[Value] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.values[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates all rows in storage order.
    pub fn rows(&self) -> Rows<'_> {
        self.rows_range(0, self.rows)
    }

    /// Iterates rows `lo..hi` in storage order.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > len()`.
    pub fn rows_range(&self, lo: usize, hi: usize) -> Rows<'_> {
        assert!(
            lo <= hi && hi <= self.rows,
            "range {lo}..{hi} out of {}",
            self.rows
        );
        Rows {
            values: &self.values[lo * self.arity..hi * self.arity],
            arity: self.arity,
            remaining: hi - lo,
        }
    }
}

/// Iterator over the rows of a [`ColumnSegment`] (or any packed
/// row-major value buffer), yielding `&[Value]` slices of the stride.
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    values: &'a [Value],
    arity: usize,
    remaining: usize,
}

impl<'a> Rows<'a> {
    /// An empty rows iterator of the given stride.
    pub fn empty(arity: usize) -> Self {
        Rows {
            values: &[],
            arity,
            remaining: 0,
        }
    }
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.arity == 0 {
            return Some(&[]);
        }
        let (row, rest) = self.values.split_at(self.arity);
        self.values = rest;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn packs_rows_in_order() {
        let tuples = vec![t2(3, 4), t2(1, 2), t2(5, 6)];
        let seg = ColumnSegment::from_tuples(2, &tuples);
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.arity(), 2);
        assert_eq!(seg.row(1), &[Value::Int(1), Value::Int(2)]);
        let back: Vec<Tuple> = seg.rows().map(Tuple::new).collect();
        assert_eq!(back, tuples);
    }

    #[test]
    fn range_iteration_matches_skip_take() {
        let tuples: Vec<Tuple> = (0..10).map(|k| t2(k, k + 1)).collect();
        let seg = ColumnSegment::from_tuples(2, &tuples);
        for (lo, hi) in [(0, 0), (0, 10), (3, 7), (9, 10)] {
            let ranged: Vec<&[Value]> = seg.rows_range(lo, hi).collect();
            let skipped: Vec<&[Value]> = seg.rows().skip(lo).take(hi - lo).collect();
            assert_eq!(ranged, skipped, "{lo}..{hi}");
        }
    }

    #[test]
    fn arity_zero_counts_rows_without_values() {
        let tuples = vec![Tuple::from([]), Tuple::from([])];
        let seg = ColumnSegment::from_tuples(0, &tuples);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.rows().count(), 2);
        assert_eq!(seg.row(0), &[] as &[Value]);
        assert_eq!(seg.rows_range(1, 2).count(), 1);
    }

    #[test]
    fn exact_size_is_reported() {
        let tuples: Vec<Tuple> = (0..5).map(|k| t2(k, k)).collect();
        let seg = ColumnSegment::from_tuples(2, &tuples);
        let mut it = seg.rows();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let t = Tuple::from([Value::Int(1)]);
        let _ = ColumnSegment::from_tuples(2, [&t]);
    }
}

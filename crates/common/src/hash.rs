//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s
//! `FxHasher`, implemented in-repo because the sanctioned offline
//! dependency set does not include a fast-hash crate.
//!
//! The default SipHash used by `std::collections::HashMap` is HashDoS
//! resistant but slow for the short keys (interned symbols, small tuples)
//! that dominate Datalog evaluation. All data hashed by the engines is
//! internally generated, so DoS resistance is not a concern here.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Firefox/rustc "Fx" hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Determinism matters for this workspace: instance fingerprints built on
/// top of this hasher are used for divergence (cycle) detection in the
/// noninflationary engines and for memoization in the nondeterministic
/// ones, and tests assert on reproducible traces.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the length so that trailing zero bytes are not
            // confused with shorter inputs.
            self.add(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`]. Convenience for fingerprints.
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"a"), hash_one(&"b"));
    }

    #[test]
    fn distinguishes_lengths() {
        // Trailing zero bytes must not collide with shorter inputs.
        let mut a = FxHasher::default();
        a.write(&[1, 0]);
        let mut b = FxHasher::default();
        b.write(&[1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_input_hashes() {
        let h = FxHasher::default();
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}

//! Error types shared across the workspace.

use crate::interner::Symbol;
use std::fmt;

/// Errors raised by the substrate layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommonError {
    /// A relation symbol was used with two different arities.
    ArityMismatch {
        /// The offending symbol.
        name: Symbol,
        /// Arity expected from the first use / declaration.
        expected: usize,
        /// Arity actually supplied.
        found: usize,
    },
    /// A relation symbol was referenced but is not present.
    UnknownRelation(Symbol),
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for {name:?}: expected {expected}, found {found}"
            ),
            CommonError::UnknownRelation(name) => {
                write!(f, "unknown relation {name:?}")
            }
        }
    }
}

impl std::error::Error for CommonError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn display_messages() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let e = CommonError::ArityMismatch {
            name: g,
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let u = CommonError::UnknownRelation(g);
        assert!(u.to_string().contains("unknown relation"));
    }
}

//! A small deterministic PRNG (splitmix64).
//!
//! The harness generators, random choosers, and property-style tests
//! only need reproducible-by-seed pseudo-randomness, not cryptographic
//! quality; hand-rolling splitmix64 keeps the workspace buildable with
//! no registry access. Splitmix64 passes BigCrush and is the standard
//! seeder for the xoshiro family, which is more than enough here.

/// A seeded splitmix64 generator. Identical seeds yield identical
/// streams on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform index in `[0, n)` via Lemire's multiply-shift.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index requires n > 0");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_range_i64 requires lo < hi");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(((((self.next_u64() as u128) * (span as u128)) >> 64) as u64) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seeded(43);
        assert_ne!(Rng::seeded(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_index_stays_in_range_and_hits_everything() {
        let mut rng = Rng::seeded(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = rng.gen_index(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_i64_covers_bounds() {
        let mut rng = Rng::seeded(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = rng.gen_range_i64(-2, 3);
            assert!((-2..3).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Rng::seeded(9);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Rng::seeded(11);
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

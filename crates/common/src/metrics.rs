//! A process-wide metrics registry with Prometheus-style text
//! exposition — the hook a future server daemon scrapes.
//!
//! Three instrument kinds, all zero-dependency and thread-safe:
//! counters (monotonic `u64`), gauges (last-write `f64`), and
//! histograms (cumulative buckets + sum + count). Series are keyed by
//! metric name plus a sorted label set; [`render`] emits the standard
//! text format (`# TYPE` headers, `name{label="v"} value`, histogram
//! `_bucket`/`_sum`/`_count` series) deterministically sorted, so tests
//! and `scripts/check.sh` can scrape it with plain `grep`.
//!
//! Naming convention (see DESIGN.md, Observability): every series is
//! `unchained_<subsystem>_<quantity>[_<unit>]`, counters end in
//! `_total`, and histograms carry their unit (`_seconds`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default histogram buckets for wall-clock seconds: exponential from
/// 100µs to ~100s, fitting everything from REPL one-liners to the
/// largest bench workloads.
pub const TIME_BUCKETS: [f64; 10] = [
    0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 30.0, 100.0,
];

#[derive(Clone, Debug)]
enum Series {
    Counter(u64),
    Gauge(f64),
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

impl Series {
    fn type_name(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram { .. } => "histogram",
        }
    }
}

#[derive(Default)]
struct RegistryState {
    // metric name → (label-set rendering → series)
    metrics: BTreeMap<String, BTreeMap<String, Series>>,
}

/// The process-wide registry behind [`metrics`].
pub struct Registry {
    state: Mutex<RegistryState>,
}

/// The global registry (created on first use).
pub fn metrics() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        state: Mutex::new(RegistryState::default()),
    })
}

/// Escapes a label value per the Prometheus text exposition format:
/// exactly backslash, double-quote, and line feed are escaped (as
/// `\\`, `\"`, `\n`). Everything else — tabs, carriage returns, other
/// control characters, Unicode — passes through verbatim; the format
/// defines no `\t`/`\uXXXX` escapes, so emitting them (as the previous
/// JSON escaper did) produced literal backslash sequences scrapers
/// would mis-read.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set as `{k="v",…}` with keys sorted (empty string
/// for no labels), which doubles as the series key.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Inserts `extra` (e.g. an `le` bucket bound) into an already-rendered
/// label key.
fn with_extra_label(key: &str, extra: &str) -> String {
    if key.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &key[..key.len() - 1])
    }
}

fn fmt_bound(b: f64) -> String {
    if b == f64::INFINITY {
        "+Inf".to_string()
    } else if b == b.trunc() && b.abs() < 1e15 {
        format!("{b:.1}")
    } else {
        format!("{b}")
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

impl Registry {
    fn with_series<R>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        update: impl FnOnce(&mut Series) -> R,
    ) -> R {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let series = state
            .metrics
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert_with(make);
        update(series)
    }

    /// Adds to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with_series(
            name,
            labels,
            || Series::Counter(0),
            |s| {
                if let Series::Counter(v) = s {
                    *v += delta;
                }
            },
        );
    }

    /// Sets a gauge to the given value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with_series(
            name,
            labels,
            || Series::Gauge(0.0),
            |s| {
                if let Series::Gauge(v) = s {
                    *v = value;
                }
            },
        );
    }

    /// Records an observation into a histogram. `bounds` fixes the
    /// bucket upper bounds on first use (later calls may pass the same
    /// or an empty slice; an implicit `+Inf` bucket always exists).
    pub fn histogram_observe(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        bounds: &[f64],
    ) {
        self.with_series(
            name,
            labels,
            || Series::Histogram {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                sum: 0.0,
                count: 0,
            },
            |s| {
                if let Series::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } = s
                {
                    let idx = bounds
                        .iter()
                        .position(|b| value <= *b)
                        .unwrap_or(bounds.len());
                    counts[idx] += 1;
                    *sum += value;
                    *count += 1;
                }
            },
        );
    }

    /// Renders every series in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, series_map) in &state.metrics {
            let Some(first) = series_map.values().next() else {
                continue;
            };
            let _ = writeln!(out, "# TYPE {name} {}", first.type_name());
            for (labels, series) in series_map {
                match series {
                    Series::Counter(v) => {
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    Series::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(*v));
                    }
                    Series::Histogram {
                        bounds,
                        counts,
                        sum,
                        count,
                    } => {
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            let bound = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                            let le = format!("le=\"{}\"", fmt_bound(bound));
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                with_extra_label(labels, &le)
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(*sum));
                        let _ = writeln!(out, "{name}_count{labels} {count}");
                    }
                }
            }
        }
        out
    }

    /// Clears every series (tests only — metrics are process-global).
    pub fn reset(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .metrics
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One registry instance private to the test (the global one is
    /// shared with every other test in the process).
    fn fresh() -> Registry {
        Registry {
            state: Mutex::new(RegistryState::default()),
        }
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = fresh();
        r.counter_add("unchained_eval_runs_total", &[("engine", "naive")], 1);
        r.counter_add("unchained_eval_runs_total", &[("engine", "naive")], 2);
        r.counter_add("unchained_eval_runs_total", &[("engine", "magic")], 1);
        let text = r.render();
        assert!(
            text.contains("# TYPE unchained_eval_runs_total counter"),
            "{text}"
        );
        assert!(
            text.contains("unchained_eval_runs_total{engine=\"naive\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("unchained_eval_runs_total{engine=\"magic\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn gauges_take_last_value_and_labels_sort() {
        let r = fresh();
        r.gauge_set("g", &[("b", "2"), ("a", "1")], 5.0);
        r.gauge_set("g", &[("a", "1"), ("b", "2")], 7.5);
        let text = r.render();
        assert!(text.contains("g{a=\"1\",b=\"2\"} 7.5"), "{text}");
        // Unlabelled series render bare.
        r.gauge_set("h", &[], 3.0);
        assert!(r.render().contains("\nh 3\n"), "{}", r.render());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = fresh();
        for v in [0.0005, 0.002, 0.002, 50.0] {
            r.histogram_observe("wall_seconds", &[("engine", "x")], v, &[0.001, 0.01, 1.0]);
        }
        let text = r.render();
        assert!(text.contains("# TYPE wall_seconds histogram"), "{text}");
        assert!(
            text.contains("wall_seconds_bucket{engine=\"x\",le=\"0.001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("wall_seconds_bucket{engine=\"x\",le=\"0.01\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("wall_seconds_bucket{engine=\"x\",le=\"1.0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("wall_seconds_bucket{engine=\"x\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("wall_seconds_count{engine=\"x\"} 4"),
            "{text}"
        );
        assert!(text.contains("wall_seconds_sum{engine=\"x\"} "), "{text}");
    }

    /// Conformance against the exposition-format spec's escaping
    /// example (`msdos_file_access_time_seconds{path="C:\\DIR\\FILE.TXT",
    /// error="Cannot find file:\n\"FILE.TXT\""}`): backslash, newline and
    /// double-quote are escaped, and *nothing else* is — a tab must pass
    /// through verbatim, not become `\t`.
    #[test]
    fn label_values_escape_per_exposition_format() {
        let r = fresh();
        r.gauge_set(
            "msdos_file_access_time_seconds",
            &[
                ("path", "C:\\DIR\\FILE.TXT"),
                ("error", "Cannot find file:\n\"FILE.TXT\""),
            ],
            1.458255915e9,
        );
        let text = r.render();
        assert!(
            text.contains(
                "msdos_file_access_time_seconds{error=\"Cannot find file:\\n\\\"FILE.TXT\\\"\",path=\"C:\\\\DIR\\\\FILE.TXT\"} 1458255915"
            ),
            "{text}"
        );

        r.reset();
        r.counter_add("c_total", &[("k", "a\tb\rc")], 1);
        let text = r.render();
        assert!(
            text.contains("c_total{k=\"a\tb\rc\"} 1"),
            "tab and carriage return must pass through unescaped: {text}"
        );
        assert!(!text.contains("\\t"), "{text}");
        assert!(!text.contains("\\r"), "{text}");
    }

    #[test]
    fn global_registry_is_shared() {
        metrics().counter_add("unchained_test_shared_total", &[], 1);
        assert!(metrics().render().contains("unchained_test_shared_total"));
    }

    #[test]
    fn reset_clears_everything() {
        let r = fresh();
        r.counter_add("c", &[], 1);
        r.reset();
        assert_eq!(r.render(), "");
    }
}

//! Constant tuples.

use crate::interner::Interner;
use crate::value::Value;
use std::fmt;
use std::ops::Deref;

/// A constant tuple over a relation schema: a fixed-arity sequence of
/// domain [`Value`]s.
///
/// Stored as a boxed slice (two words on the stack) rather than a `Vec`
/// (three words) since tuples are immutable once built and relations hold
/// very many of them.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects the tuple onto the given column positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple(columns.iter().map(|&c| self.0[c]).collect())
    }

    /// Renders the tuple for humans, e.g. `('a', 3)`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayTuple<'a> {
        DisplayTuple {
            tuple: self,
            interner,
        }
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl std::borrow::Borrow<[Value]> for Tuple {
    /// Lets hash sets keyed by `Tuple` answer lookups for borrowed
    /// `&[Value]` rows straight out of columnar storage, with no
    /// per-probe `Tuple` allocation. Sound because `Tuple` is a
    /// single-field wrapper: its derived `Hash`/`Eq`/`Ord` delegate to
    /// the slice, so the `Borrow` coherence requirements hold.
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl crate::space::HeapSize for Tuple {
    /// The inline `Box<[Value]>` handle plus one value slot per column
    /// (see [`crate::space::tuple_bytes`]).
    fn heap_bytes(&self) -> usize {
        crate::space::tuple_bytes(self.arity())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple(Box::new(v))
    }
}

/// Helper returned by [`Tuple::display`].
pub struct DisplayTuple<'a> {
    tuple: &'a Tuple,
    interner: &'a Interner,
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.tuple.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.display(self.interner))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_values() {
        let t = Tuple::from([Value::Int(1), Value::Int(2)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn empty_tuple() {
        // Zero-ary tuples represent propositional facts such as `delay`
        // in Example 4.4 of the paper.
        let t = Tuple::from([]);
        assert_eq!(t.arity(), 0);
    }

    #[test]
    fn projection() {
        let t = Tuple::from([Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::from([Value::Int(30), Value::Int(10)])
        );
        assert_eq!(t.project(&[]), Tuple::from([]));
    }

    #[test]
    fn display() {
        let mut i = Interner::new();
        let t = Tuple::from([Value::sym(&mut i, "a"), Value::Int(5)]);
        assert_eq!(t.display(&i).to_string(), "('a', 5)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::from([Value::Int(1), Value::Int(2)]);
        let b = Tuple::from([Value::Int(1), Value::Int(3)]);
        assert!(a < b);
    }
}

//! The measurement kernel behind the in-repo benchmark harness: a
//! warmup/repetition loop over a monotonic clock, order statistics, the
//! versioned `BENCH.json` schema, and the baseline comparator that lets
//! CI gate performance regressions.
//!
//! Soufflé's profiler and DDlog's self-profiling are the reference
//! points: a production Datalog engine measures itself, with no
//! external benchmarking dependency, and records machine-readable
//! artifacts so every performance claim has a before/after trail. The
//! schema marries wall-time statistics (min/median/p95 over
//! repetitions) with the work gauges the [`crate::telemetry`] subsystem
//! already collects — stage counts, facts derived, join probe/build
//! counters, peak instance size, interner growth — so a "win" can be
//! separated into *less work* vs. *same work done faster*.
//!
//! The workload registry that produces [`BenchEntry`] values lives in
//! the `unchained-bench` crate (it needs the parser and every engine);
//! this module is the dependency-free substrate shared with the CLI.

use std::fmt::Write as _;
use std::time::Instant;

use crate::json::Json;
use crate::space::fmt_bytes;
use crate::telemetry::{json_escape, EvalTrace};

/// Version of the `BENCH.json` schema. Bump on any breaking change to
/// the emitted shape; the parser rejects mismatched files so a stale
/// baseline fails loudly instead of comparing garbage.
///
/// v2 added the index-maintenance gauges (`index_hits`, `index_appends`,
/// `appended_tuples`, `index_rebuilds`) to the `joins` object. v3 added
/// the per-entry `threads` field (worker threads the case ran with) so
/// thread-scaling rows are first-class, separately-keyed entries. v4
/// added the space gauges `bytes_peak`/`bytes_final` (logical instance
/// bytes, see `crate::space`) and the derived `tuples_per_sec` rate.
/// v5 added the `planner` object (`joins_pruned`, `subplans_shared`)
/// recording the cost-based planner's deterministic effect on each run.
/// v6 added the `ivm` object (`overdeleted`, `rederived`) for the
/// incremental-maintenance workloads, and relaxed the reader to accept
/// v4/v5 baselines (sub-objects introduced later parse as zeroes) so an
/// old committed baseline still compares instead of failing outright.
/// v7 added the per-entry `edb_facts` field (input EDB size, so
/// throughput rows are self-describing) and the derived
/// `speedup_vs_seq` rate on thread-scaling rows; it also stopped gating
/// the index-maintenance gauges (`index_appends`/`index_rebuilds`) on
/// entries with `threads > 1` — under the morsel-driven scheduler the
/// per-worker cache contents depend on which worker pulled which
/// morsel, so those two gauges are schedule-dependent there (the
/// fact/stage/byte gauges remain exact at every thread count).
pub const BENCH_SCHEMA_VERSION: u64 = 7;

/// Oldest `BENCH.json` schema the reader still accepts. Versions below
/// this renamed or re-shaped existing fields; v4 onward only *added*
/// fields, which parse as zero when absent.
pub const BENCH_SCHEMA_OLDEST_READABLE: u64 = 4;

/// Ignore regressions whose absolute median increase is below this
/// floor (25 µs): ratios on microsecond-scale cases are dominated by
/// scheduler noise, and no interesting regression hides under it.
pub const REGRESSION_MIN_DELTA_NANOS: u64 = 25_000;

/// Default regression threshold: fail when a median is more than 2×
/// its baseline (and above [`REGRESSION_MIN_DELTA_NANOS`]).
pub const DEFAULT_REGRESSION_THRESHOLD: f64 = 2.0;

/// Byte-growth gate: an entry's `bytes_peak` more than this factor over
/// its baseline counts as a space regression. Logical bytes are
/// deterministic (counts × fixed widths, see `crate::space`), so unlike
/// wall time this gate is machine-independent and needs no noise floor
/// beyond requiring a non-zero baseline.
pub const BYTES_REGRESSION_FACTOR: f64 = 2.0;

/// Cross-engine bound, checked within the *new* report: on workloads
/// both engines measure, the `while` interpreter may be at most this
/// factor slower than the semi-naive engine at the same size and
/// thread count. The while engine re-evaluates its whole comprehension
/// every loop iteration (no delta reasoning), so a gap of one order of
/// magnitude is expected — but its assignments evaluate through the
/// same index-nested-loop joins as the Datalog engines, so a gap of
/// three orders (as with the old `O(|domain|^k)` enumeration, which
/// ran chain TC at n=64 ~1600× slower than semi-naive) is a
/// regression. Ratios between same-machine, same-run rows are
/// machine-independent enough to gate.
pub const WHILE_GAP_FACTOR: f64 = 100.0;

/// Warmup/repetition counts for one benchmark case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repetitions {
    /// Untimed runs executed first (cache/allocator warmup).
    pub warmup: usize,
    /// Timed runs; must be ≥ 1.
    pub reps: usize,
}

impl Repetitions {
    /// The full-fidelity default: 1 warmup + 5 timed repetitions.
    pub fn full() -> Self {
        Repetitions { warmup: 1, reps: 5 }
    }

    /// The `--quick` smoke setting: 1 warmup + 3 timed repetitions.
    pub fn quick() -> Self {
        Repetitions { warmup: 1, reps: 3 }
    }
}

/// Runs `f` `warmup + reps` times, timing the last `reps` executions on
/// the monotonic clock. Returns the timed samples in nanoseconds and
/// the result of the final execution (so the caller can harvest gauges
/// from it without an extra run).
pub fn measure<T>(rep: Repetitions, mut f: impl FnMut() -> T) -> (Vec<u64>, T) {
    assert!(rep.reps >= 1, "measure requires reps >= 1");
    for _ in 0..rep.warmup {
        let _ = f();
    }
    let mut samples = Vec::with_capacity(rep.reps);
    let mut last = None;
    for _ in 0..rep.reps {
        let start = Instant::now();
        let out = f();
        samples.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        last = Some(out);
    }
    (samples, last.expect("reps >= 1"))
}

/// Order statistics over one case's timed samples, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallStats {
    /// Fastest repetition.
    pub min: u64,
    /// Median repetition (lower-median for even counts).
    pub median: u64,
    /// 95th-percentile repetition (nearest-rank).
    pub p95: u64,
    /// Sum over all repetitions.
    pub total: u64,
}

impl WallStats {
    /// Summarizes a non-empty sample set.
    pub fn from_samples(samples: &[u64]) -> WallStats {
        assert!(!samples.is_empty(), "summarize requires samples");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        WallStats {
            min: sorted[0],
            median: sorted[(sorted.len() - 1) / 2],
            p95: rank(0.95),
            total: samples.iter().sum(),
        }
    }
}

/// Work gauges for one case, harvested from the engine's [`EvalTrace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Stages (immediate-consequence applications or the engine's
    /// analogue) in one run.
    pub stages: u64,
    /// Facts in the final instance beyond the input (saturating).
    pub facts_derived: u64,
    /// Largest instance observed at any stage boundary.
    pub peak_facts: u64,
    /// Rule-body matches evaluated.
    pub rules_fired: u64,
    /// Hash-index probes performed.
    pub probes: u64,
    /// Tuples returned by those probes.
    pub probe_tuples: u64,
    /// Hash indexes built fresh (includes per-round delta indexes).
    pub index_builds: u64,
    /// Tuples scanned while building or rebuilding indexes.
    pub indexed_tuples: u64,
    /// Index-cache probes answered by an already-current index.
    pub index_hits: u64,
    /// Stale indexes refreshed incrementally by absorbing new tuples.
    pub index_appends: u64,
    /// Tuples appended by those incremental absorbs.
    pub appended_tuples: u64,
    /// Stale indexes rebuilt from scratch (lineage breaks only; bounded
    /// by relation count — not round count — on append-only fixpoints).
    pub index_rebuilds: u64,
    /// Join steps the planner turned into index probes by pushing an
    /// already-bound literal ahead of unbound ones (deterministic:
    /// a pure function of program + catalog, never of the schedule).
    pub plan_joins_pruned: u64,
    /// Hash-consed subplan arena hits — body prefixes shared across
    /// rules or Δ-variants instead of being replanned (deterministic).
    pub subplans_shared: u64,
    /// Interner size after the run.
    pub interner_symbols: u64,
    /// Logical-byte high-water mark of the instance (plus any pending
    /// delta buffer) across the run; 0 when the engine does not account.
    pub bytes_peak: u64,
    /// Logical bytes of the final instance.
    pub bytes_final: u64,
    /// Tuples withdrawn by the incremental engine's overdelete pass
    /// (zero for batch engines).
    pub ivm_overdeleted: u64,
    /// Withdrawn tuples the incremental engine restored from
    /// alternative support (zero for batch engines).
    pub ivm_rederived: u64,
}

impl Gauges {
    /// Pulls the gauges out of a finished trace. `input_facts` is the
    /// size of the input instance (to report *derived* facts).
    pub fn from_trace(trace: &EvalTrace, input_facts: usize) -> Gauges {
        Gauges {
            // Stage-based engines record one `StageRecord` per stage;
            // the while interpreter counts loop iterations instead.
            stages: (trace.stages.len() as u64).max(trace.loop_iterations as u64),
            facts_derived: trace.final_facts.saturating_sub(input_facts) as u64,
            peak_facts: trace.peak_facts as u64,
            rules_fired: trace.rules_fired,
            probes: trace.joins.probes,
            probe_tuples: trace.joins.probe_tuples,
            index_builds: trace.joins.index_builds,
            indexed_tuples: trace.joins.indexed_tuples,
            index_hits: trace.joins.index_hits,
            index_appends: trace.joins.index_appends,
            appended_tuples: trace.joins.appended_tuples,
            index_rebuilds: trace.joins.index_rebuilds,
            plan_joins_pruned: trace.plan_joins_pruned,
            subplans_shared: trace.subplans_shared,
            interner_symbols: trace.interner_symbols as u64,
            bytes_peak: trace.bytes_peak,
            bytes_final: trace.bytes_final,
            ivm_overdeleted: trace.ivm_overdeleted,
            ivm_rederived: trace.ivm_rederived,
        }
    }
}

/// One `workload × engine × size` measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Workload name (`chain`, `win`, `magic`, …).
    pub workload: String,
    /// Engine name (`naive`, `seminaive`, `magic`, `while`, …).
    pub engine: String,
    /// Worker threads the case ran with (1 = sequential).
    pub threads: u64,
    /// Workload size parameter (nodes, states, stages — per workload).
    pub n: u64,
    /// Input EDB facts the case was fed (0 when the workload predates
    /// the field or generates no input relation).
    pub edb_facts: u64,
    /// Timed repetitions behind `wall`.
    pub reps: u64,
    /// Wall-time order statistics.
    pub wall: WallStats,
    /// Work gauges from the final repetition's trace.
    pub gauges: Gauges,
}

impl BenchEntry {
    /// The comparison key: entries are matched across reports by
    /// workload, engine, thread count, and size. Sequential entries keep
    /// the historical `workload/engine/n` spelling; parallel entries are
    /// keyed apart with an `@threads` marker.
    pub fn key(&self) -> String {
        if self.threads > 1 {
            format!(
                "{}/{}@{}/{}",
                self.workload, self.engine, self.threads, self.n
            )
        } else {
            format!("{}/{}/{}", self.workload, self.engine, self.n)
        }
    }

    /// Derived throughput: facts derived per second of median wall time
    /// (0 when the median rounds to zero). Emitted into `BENCH.json`
    /// for dashboards but never parsed back — it is a pure function of
    /// two stored fields.
    pub fn tuples_per_sec(&self) -> u64 {
        if self.wall.median == 0 {
            return 0;
        }
        (self.gauges.facts_derived as f64 * 1e9 / self.wall.median as f64) as u64
    }
}

impl BenchReport {
    /// Derived speedup of `e` over the sequential entry for the same
    /// workload, engine, and size in this report: `seq_median /
    /// e.median`. Returns 1.0 for sequential entries and 0.0 when no
    /// sequential twin exists or a median is zero. Emitted into
    /// `BENCH.json` for thread-scaling rows but never parsed back.
    pub fn speedup_vs_seq(&self, e: &BenchEntry) -> f64 {
        if e.threads <= 1 {
            return 1.0;
        }
        let Some(seq) = self.entries.iter().find(|b| {
            b.threads == 1 && b.workload == e.workload && b.engine == e.engine && b.n == e.n
        }) else {
            return 0.0;
        };
        if e.wall.median == 0 || seq.wall.median == 0 {
            return 0.0;
        }
        seq.wall.median as f64 / e.wall.median as f64
    }
}

/// A full harness run: schema version plus one entry per case.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Entries in registry order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Renders the versioned `BENCH.json` document (one entry per
    /// line, so diffs of committed snapshots stay reviewable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"schema_version\":{BENCH_SCHEMA_VERSION},");
        out.push_str("\"entries\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"workload\":\"{}\",\"engine\":\"{}\",\"threads\":{},\"n\":{},\
                 \"edb_facts\":{},\"reps\":{}",
                json_escape(&e.workload),
                json_escape(&e.engine),
                e.threads,
                e.n,
                e.edb_facts,
                e.reps
            );
            let _ = write!(
                out,
                ",\"wall\":{{\"min\":{},\"median\":{},\"p95\":{},\"total\":{}}}",
                e.wall.min, e.wall.median, e.wall.p95, e.wall.total
            );
            let g = &e.gauges;
            let _ = write!(
                out,
                ",\"stages\":{},\"facts_derived\":{},\"peak_facts\":{},\"rules_fired\":{}",
                g.stages, g.facts_derived, g.peak_facts, g.rules_fired
            );
            let _ = write!(
                out,
                ",\"joins\":{{\"probes\":{},\"probe_tuples\":{},\"index_builds\":{},\
                 \"indexed_tuples\":{},\"index_hits\":{},\"index_appends\":{},\
                 \"appended_tuples\":{},\"index_rebuilds\":{}}}",
                g.probes,
                g.probe_tuples,
                g.index_builds,
                g.indexed_tuples,
                g.index_hits,
                g.index_appends,
                g.appended_tuples,
                g.index_rebuilds
            );
            let _ = write!(
                out,
                ",\"planner\":{{\"joins_pruned\":{},\"subplans_shared\":{}}}",
                g.plan_joins_pruned, g.subplans_shared
            );
            let _ = write!(
                out,
                ",\"ivm\":{{\"overdeleted\":{},\"rederived\":{}}}",
                g.ivm_overdeleted, g.ivm_rederived
            );
            let _ = write!(
                out,
                ",\"interner_symbols\":{},\"bytes_peak\":{},\"bytes_final\":{},\
                 \"tuples_per_sec\":{},\"speedup_vs_seq\":{:.2}}}",
                g.interner_symbols,
                g.bytes_peak,
                g.bytes_final,
                e.tuples_per_sec(),
                self.speedup_vs_seq(e)
            );
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a `BENCH.json` document. Versions
    /// [`BENCH_SCHEMA_OLDEST_READABLE`]`..=`[`BENCH_SCHEMA_VERSION`]
    /// are accepted — later versions only added sub-objects (`planner`
    /// in v5, `ivm` in v6), which parse as zeroes when absent so an old
    /// committed baseline still compares. Anything outside the window
    /// is rejected loudly.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("BENCH.json: missing schema_version")?;
        if !(BENCH_SCHEMA_OLDEST_READABLE..=BENCH_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "BENCH.json: schema_version {version} (this build reads \
                 {BENCH_SCHEMA_OLDEST_READABLE}..={BENCH_SCHEMA_VERSION}); \
                 regenerate the baseline"
            ));
        }
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("BENCH.json: missing entries array")?;
        let field = |j: &Json, name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("BENCH.json entry: missing numeric `{name}`"))
        };
        let mut out = Vec::with_capacity(entries.len());
        // Sub-objects introduced after v4 are optional: absent (a pre-v5
        // or pre-v6 baseline) means every gauge inside is zero.
        let opt = |obj: Option<&Json>, name: &str| -> Result<u64, String> {
            match obj {
                None => Ok(0),
                Some(j) => field(j, name),
            }
        };
        for e in entries {
            let wall = e.get("wall").ok_or("BENCH.json entry: missing wall")?;
            let joins = e.get("joins").ok_or("BENCH.json entry: missing joins")?;
            let planner = e.get("planner");
            let ivm = e.get("ivm");
            out.push(BenchEntry {
                workload: e
                    .get("workload")
                    .and_then(Json::as_str)
                    .ok_or("BENCH.json entry: missing workload")?
                    .to_string(),
                engine: e
                    .get("engine")
                    .and_then(Json::as_str)
                    .ok_or("BENCH.json entry: missing engine")?
                    .to_string(),
                threads: field(e, "threads")?,
                n: field(e, "n")?,
                // Added in v7; absent in older baselines.
                edb_facts: e.get("edb_facts").and_then(Json::as_u64).unwrap_or(0),
                reps: field(e, "reps")?,
                wall: WallStats {
                    min: field(wall, "min")?,
                    median: field(wall, "median")?,
                    p95: field(wall, "p95")?,
                    total: field(wall, "total")?,
                },
                gauges: Gauges {
                    stages: field(e, "stages")?,
                    facts_derived: field(e, "facts_derived")?,
                    peak_facts: field(e, "peak_facts")?,
                    rules_fired: field(e, "rules_fired")?,
                    probes: field(joins, "probes")?,
                    probe_tuples: field(joins, "probe_tuples")?,
                    index_builds: field(joins, "index_builds")?,
                    indexed_tuples: field(joins, "indexed_tuples")?,
                    index_hits: field(joins, "index_hits")?,
                    index_appends: field(joins, "index_appends")?,
                    appended_tuples: field(joins, "appended_tuples")?,
                    index_rebuilds: field(joins, "index_rebuilds")?,
                    plan_joins_pruned: opt(planner, "joins_pruned")?,
                    subplans_shared: opt(planner, "subplans_shared")?,
                    interner_symbols: field(e, "interner_symbols")?,
                    bytes_peak: field(e, "bytes_peak")?,
                    bytes_final: field(e, "bytes_final")?,
                    ivm_overdeleted: opt(ivm, "overdeleted")?,
                    ivm_rederived: opt(ivm, "rederived")?,
                },
            });
        }
        Ok(BenchReport { entries: out })
    }

    /// Renders the human-readable results table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>4} {:>10} {:>10} {:>10} {:>7} {:>9} {:>10} {:>9} {:>8} {:>9} {:>7} {:>10}",
            "workload/engine",
            "n",
            "reps",
            "median",
            "min",
            "p95",
            "stages",
            "facts",
            "probes",
            "peak",
            "appends",
            "rebuilds",
            "pruned",
            "bytes"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>4} {:>10} {:>10} {:>10} {:>7} {:>9} {:>10} {:>9} {:>8} {:>9} {:>7} {:>10}",
                if e.threads > 1 {
                    format!("{}/{}@{}", e.workload, e.engine, e.threads)
                } else {
                    format!("{}/{}", e.workload, e.engine)
                },
                e.n,
                e.reps,
                fmt_nanos(e.wall.median),
                fmt_nanos(e.wall.min),
                fmt_nanos(e.wall.p95),
                e.gauges.stages,
                e.gauges.facts_derived,
                e.gauges.probes,
                e.gauges.peak_facts,
                e.gauges.index_appends,
                e.gauges.index_rebuilds,
                e.gauges.plan_joins_pruned,
                fmt_bytes(e.gauges.bytes_peak)
            );
        }
        out
    }
}

/// One matched entry pair in a baseline comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct EntryDelta {
    /// The shared key (`workload/engine/n`).
    pub key: String,
    /// Baseline median, nanoseconds.
    pub base_median: u64,
    /// New median, nanoseconds.
    pub new_median: u64,
    /// `new_median / base_median` (∞-safe: a 0 baseline compares as 1).
    pub ratio: f64,
    /// Whether the slowdown crosses the threshold *and* the absolute
    /// floor ([`REGRESSION_MIN_DELTA_NANOS`]).
    pub time_regressed: bool,
    /// Whether the deterministic work gauges drifted (facts derived,
    /// stage count, or index-maintenance work changed for the same
    /// workload/engine/size).
    pub work_drifted: bool,
    /// Whether `bytes_peak` grew past [`BYTES_REGRESSION_FACTOR`] ×
    /// baseline (only checked when the baseline accounted bytes at all).
    pub bytes_regressed: bool,
}

/// One cross-engine data point from the new report: the `while` row
/// against the semi-naive row of the same workload, size, and thread
/// count (see [`WHILE_GAP_FACTOR`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineGap {
    /// The while entry's key.
    pub key: String,
    /// Median wall nanoseconds of the while row.
    pub while_median: u64,
    /// Median wall nanoseconds of the matching semi-naive row.
    pub seminaive_median: u64,
    /// `while_median / seminaive_median`.
    pub ratio: f64,
    /// Whether the gap exceeds [`WHILE_GAP_FACTOR`] (beyond the
    /// absolute noise floor).
    pub regressed: bool,
}

/// The outcome of comparing a run against a baseline `BENCH.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Matched entries, in the new report's order.
    pub deltas: Vec<EntryDelta>,
    /// Keys present only in the baseline (not a failure: quick and full
    /// runs measure different sizes).
    pub missing: Vec<String>,
    /// Keys present only in the new report.
    pub added: Vec<String>,
    /// Cross-engine while-vs-seminaive gaps found in the new report.
    pub engine_gaps: Vec<EngineGap>,
    /// The threshold the comparison ran with.
    pub threshold: f64,
}

impl Comparison {
    /// True when any matched entry regressed (time, work drift, or
    /// byte growth) or a cross-engine gap blew past its bound.
    pub fn has_regression(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| d.time_regressed || d.work_drifted || d.bytes_regressed)
            || self.engine_gaps.iter().any(|g| g.regressed)
    }

    /// Renders the per-entry delta table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "baseline comparison (regression = median > {:.2}× baseline and \
             +{} absolute):",
            self.threshold,
            fmt_nanos(REGRESSION_MIN_DELTA_NANOS)
        );
        for d in &self.deltas {
            let verdict = if d.work_drifted {
                "  WORK DRIFT"
            } else if d.bytes_regressed {
                "  BYTES GREW"
            } else if d.time_regressed {
                "  REGRESSED"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>10} -> {:>10}  (x{:.2}){verdict}",
                d.key,
                fmt_nanos(d.base_median),
                fmt_nanos(d.new_median),
                d.ratio
            );
        }
        for k in &self.missing {
            let _ = writeln!(out, "  {k:<28} only in baseline");
        }
        for k in &self.added {
            let _ = writeln!(out, "  {k:<28} only in this run");
        }
        for g in &self.engine_gaps {
            let verdict = if g.regressed { "  WHILE GAP" } else { "" };
            let _ = writeln!(
                out,
                "  {:<28} {:>10} vs {:>10} seminaive  (x{:.1}, bound x{:.0}){verdict}",
                g.key,
                fmt_nanos(g.while_median),
                fmt_nanos(g.seminaive_median),
                g.ratio,
                WHILE_GAP_FACTOR
            );
        }
        let regressions = self
            .deltas
            .iter()
            .filter(|d| d.time_regressed || d.work_drifted || d.bytes_regressed)
            .count()
            + self.engine_gaps.iter().filter(|g| g.regressed).count();
        let _ = writeln!(
            out,
            "{} compared, {} regression(s), {} missing, {} added",
            self.deltas.len(),
            regressions,
            self.missing.len(),
            self.added.len()
        );
        out
    }
}

/// Compares `new` against `base`, flagging entries whose median wall
/// time exceeds `threshold × baseline` (beyond the absolute floor) and
/// entries whose deterministic work gauges changed.
pub fn compare_reports(new: &BenchReport, base: &BenchReport, threshold: f64) -> Comparison {
    let mut cmp = Comparison {
        threshold,
        ..Default::default()
    };
    for e in &new.entries {
        let key = e.key();
        match base.entries.iter().find(|b| b.key() == key) {
            None => cmp.added.push(key),
            Some(b) => {
                let ratio = if b.wall.median == 0 {
                    1.0
                } else {
                    e.wall.median as f64 / b.wall.median as f64
                };
                let delta = e.wall.median.saturating_sub(b.wall.median);
                cmp.deltas.push(EntryDelta {
                    key,
                    base_median: b.wall.median,
                    new_median: e.wall.median,
                    ratio,
                    time_regressed: ratio > threshold && delta > REGRESSION_MIN_DELTA_NANOS,
                    // The fact and stage gauges are deterministic at
                    // every thread count. The index-maintenance gauges
                    // are only deterministic sequentially: under the
                    // morsel scheduler, which worker cache builds or
                    // absorbs an index depends on the schedule.
                    work_drifted: e.gauges.facts_derived != b.gauges.facts_derived
                        || e.gauges.stages != b.gauges.stages
                        || (e.threads <= 1
                            && (e.gauges.index_rebuilds != b.gauges.index_rebuilds
                                || e.gauges.index_appends != b.gauges.index_appends)),
                    bytes_regressed: b.gauges.bytes_peak > 0
                        && e.gauges.bytes_peak as f64
                            > b.gauges.bytes_peak as f64 * BYTES_REGRESSION_FACTOR,
                });
            }
        }
    }
    for b in &base.entries {
        let key = b.key();
        if !new.entries.iter().any(|e| e.key() == key) {
            cmp.missing.push(key);
        }
    }
    // Cross-engine bound on the new report alone: the while interpreter
    // against semi-naive on every workload/size/threads both measure.
    for e in &new.entries {
        if e.engine != "while" {
            continue;
        }
        let Some(s) = new.entries.iter().find(|s| {
            s.engine == "seminaive"
                && s.workload == e.workload
                && s.n == e.n
                && s.threads == e.threads
        }) else {
            continue;
        };
        let ratio = if s.wall.median == 0 {
            1.0
        } else {
            e.wall.median as f64 / s.wall.median as f64
        };
        cmp.engine_gaps.push(EngineGap {
            key: e.key(),
            while_median: e.wall.median,
            seminaive_median: s.wall.median,
            ratio,
            regressed: ratio > WHILE_GAP_FACTOR
                && e.wall.median.saturating_sub(s.wall.median) > REGRESSION_MIN_DELTA_NANOS,
        });
    }
    cmp
}

/// One per-entry data point carried into a history line: just the
/// fields that stay comparable across commits — the median (for eyes,
/// never gated), plus the two deterministic gauges the history gate
/// checks (`bytes_peak` growth and `facts_derived` drift).
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryPoint {
    /// The entry key (`workload/engine[@threads]/n`).
    pub key: String,
    /// Median wall nanoseconds of that run.
    pub median: u64,
    /// Logical-byte high-water mark of that run.
    pub bytes_peak: u64,
    /// Facts derived beyond the input.
    pub facts_derived: u64,
}

/// One benchmark run recorded into `BENCH_HISTORY.json`: a git
/// revision, a date (both passed in by the caller — this module never
/// reads the clock or the repo), and one [`HistoryPoint`] per entry.
/// Serialized as exactly one JSON line so the file is append-only and
/// its diffs are one line per run.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRun {
    /// Git revision the run was taken at.
    pub rev: String,
    /// ISO date of the run.
    pub date: String,
    /// One point per report entry, in report order.
    pub points: Vec<HistoryPoint>,
}

impl HistoryRun {
    /// Distills a report into a history line.
    pub fn from_report(report: &BenchReport, rev: &str, date: &str) -> HistoryRun {
        HistoryRun {
            rev: rev.to_string(),
            date: date.to_string(),
            points: report
                .entries
                .iter()
                .map(|e| HistoryPoint {
                    key: e.key(),
                    median: e.wall.median,
                    bytes_peak: e.gauges.bytes_peak,
                    facts_derived: e.gauges.facts_derived,
                })
                .collect(),
        }
    }

    /// Renders the run as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"rev\":\"{}\",\"date\":\"{}\",\"points\":[",
            json_escape(&self.rev),
            json_escape(&self.date)
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{}\",\"median\":{},\"bytes_peak\":{},\"facts_derived\":{}}}",
                json_escape(&p.key),
                p.median,
                p.bytes_peak,
                p.facts_derived
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses one history line (strict: every field required).
    pub fn from_json_line(line: &str) -> Result<HistoryRun, String> {
        let doc = Json::parse(line).map_err(|e| format!("BENCH_HISTORY.json: {e}"))?;
        let s = |j: &Json, name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("BENCH_HISTORY.json run: missing string `{name}`"))
        };
        let u = |j: &Json, name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("BENCH_HISTORY.json point: missing numeric `{name}`"))
        };
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("BENCH_HISTORY.json run: missing points array")?
            .iter()
            .map(|p| {
                Ok(HistoryPoint {
                    key: p
                        .get("key")
                        .and_then(Json::as_str)
                        .ok_or("BENCH_HISTORY.json point: missing `key`")?
                        .to_string(),
                    median: u(p, "median")?,
                    bytes_peak: u(p, "bytes_peak")?,
                    facts_derived: u(p, "facts_derived")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(HistoryRun {
            rev: s(&doc, "rev")?,
            date: s(&doc, "date")?,
            points,
        })
    }
}

/// The whole `BENCH_HISTORY.json` trajectory: one [`HistoryRun`] per
/// line, oldest first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchHistory {
    /// Runs in file (= chronological append) order.
    pub runs: Vec<HistoryRun>,
}

impl BenchHistory {
    /// Parses the line-oriented history file (blank lines ignored).
    pub fn parse(text: &str) -> Result<BenchHistory, String> {
        let runs = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(HistoryRun::from_json_line)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchHistory { runs })
    }

    /// Renders the history back to its file form (one line per run).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the trajectory for humans: the run list, then one line
    /// per key showing its median/byte series oldest → newest.
    pub fn render_trajectory(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bench history: {} run(s)", self.runs.len());
        for r in &self.runs {
            let _ = writeln!(out, "  {} {} ({} workloads)", r.rev, r.date, r.points.len());
        }
        let mut keys: Vec<&str> = Vec::new();
        for r in &self.runs {
            for p in &r.points {
                if !keys.contains(&p.key.as_str()) {
                    keys.push(&p.key);
                }
            }
        }
        keys.sort_unstable();
        for key in keys {
            let series: Vec<String> = self
                .runs
                .iter()
                .filter_map(|r| r.points.iter().find(|p| p.key == key))
                .map(|p| format!("{} {}", fmt_nanos(p.median), fmt_bytes(p.bytes_peak)))
                .collect();
            let _ = writeln!(out, "  {:<28} {}", key, series.join(" -> "));
        }
        out
    }
}

/// The outcome of gating a report against the latest history line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistoryComparison {
    /// Revision of the history line compared against.
    pub baseline_rev: String,
    /// How many report entries had a matching history point.
    pub checked: usize,
    /// One human-readable line per violated gate.
    pub failures: Vec<String>,
}

impl HistoryComparison {
    /// True when no gate fired.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "history comparison vs {}: {} checked, {} failure(s)",
            self.baseline_rev,
            self.checked,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "  {f}");
        }
        out
    }
}

/// Gates `report` against the most recent run in `history`. Only the
/// deterministic gauges are gated — `bytes_peak` growth beyond
/// [`BYTES_REGRESSION_FACTOR`] and any `facts_derived` drift — never
/// wall time, so a committed history validates on any machine. Keys
/// present on only one side are skipped (quick and full runs measure
/// different sizes). Errs on an empty history.
pub fn compare_with_history(
    report: &BenchReport,
    history: &BenchHistory,
) -> Result<HistoryComparison, String> {
    let last = history
        .runs
        .last()
        .ok_or("BENCH_HISTORY.json has no runs to compare against")?;
    let mut cmp = HistoryComparison {
        baseline_rev: last.rev.clone(),
        ..Default::default()
    };
    for e in &report.entries {
        let key = e.key();
        let Some(p) = last.points.iter().find(|p| p.key == key) else {
            continue;
        };
        cmp.checked += 1;
        if p.bytes_peak > 0
            && e.gauges.bytes_peak as f64 > p.bytes_peak as f64 * BYTES_REGRESSION_FACTOR
        {
            cmp.failures.push(format!(
                "{key}: bytes_peak {} -> {} (> {BYTES_REGRESSION_FACTOR}x)",
                fmt_bytes(p.bytes_peak),
                fmt_bytes(e.gauges.bytes_peak)
            ));
        }
        if e.gauges.facts_derived != p.facts_derived {
            cmp.failures.push(format!(
                "{key}: facts_derived drifted {} -> {}",
                p.facts_derived, e.gauges.facts_derived
            ));
        }
    }
    Ok(cmp)
}

/// Formats nanoseconds with an adaptive unit (shared with telemetry's
/// table style).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(workload: &str, engine: &str, n: u64, median: u64) -> BenchEntry {
        BenchEntry {
            workload: workload.into(),
            engine: engine.into(),
            threads: 1,
            n,
            edb_facts: 0,
            reps: 3,
            wall: WallStats {
                min: median / 2,
                median,
                p95: median * 2,
                total: median * 3,
            },
            gauges: Gauges {
                stages: 4,
                facts_derived: 10,
                peak_facts: 12,
                rules_fired: 20,
                probes: 30,
                probe_tuples: 40,
                index_builds: 2,
                indexed_tuples: 15,
                index_hits: 6,
                index_appends: 3,
                appended_tuples: 9,
                index_rebuilds: 1,
                plan_joins_pruned: 2,
                subplans_shared: 1,
                interner_symbols: 5,
                bytes_peak: 4096,
                bytes_final: 2048,
                ivm_overdeleted: 7,
                ivm_rederived: 4,
            },
        }
    }

    #[test]
    fn wall_stats_order_statistics() {
        let s = WallStats::from_samples(&[5, 1, 9, 3, 7]);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 5);
        assert_eq!(s.p95, 9);
        assert_eq!(s.total, 25);
        let one = WallStats::from_samples(&[4]);
        assert_eq!((one.min, one.median, one.p95, one.total), (4, 4, 4, 4));
    }

    #[test]
    fn measure_runs_warmup_plus_reps() {
        let mut calls = 0;
        let (samples, last) = measure(Repetitions { warmup: 2, reps: 3 }, || {
            calls += 1;
            calls
        });
        assert_eq!(samples.len(), 3);
        assert_eq!(calls, 5);
        assert_eq!(last, 5);
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport {
            entries: vec![
                entry("chain", "naive", 16, 1_000_000),
                entry("win", "wellfounded", 8, 500),
            ],
        };
        let json = report.to_json();
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn threads_field_round_trips_and_keys_entries_apart() {
        let mut seq = entry("chain", "seminaive", 64, 1_000);
        let mut par = entry("chain", "seminaive", 64, 700);
        par.threads = 4;
        assert_eq!(seq.key(), "chain/seminaive/64");
        assert_eq!(par.key(), "chain/seminaive@4/64");
        seq.threads = 1;
        let report = BenchReport {
            entries: vec![seq, par],
        };
        let json = report.to_json();
        // `threads` sits between engine and n so line-oriented consumers
        // (scripts/check.sh) can pin a row by prefix.
        assert!(
            json.contains("\"engine\":\"seminaive\",\"threads\":1,\"n\":64"),
            "{json}"
        );
        assert!(
            json.contains("\"engine\":\"seminaive\",\"threads\":4,\"n\":64"),
            "{json}"
        );
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        let table = report.render_table();
        assert!(table.contains("chain/seminaive@4"), "{table}");
    }

    #[test]
    fn schema_version_mismatch_rejected() {
        let report = BenchReport {
            entries: vec![entry("chain", "naive", 16, 100)],
        };
        for bad in [
            999,
            BENCH_SCHEMA_VERSION + 1,
            BENCH_SCHEMA_OLDEST_READABLE - 1,
        ] {
            let json = report.to_json().replace(
                &format!("\"schema_version\":{BENCH_SCHEMA_VERSION}"),
                &format!("\"schema_version\":{bad}"),
            );
            let err = BenchReport::from_json(&json).unwrap_err();
            assert!(err.contains(&format!("schema_version {bad}")), "{err}");
        }
    }

    /// Backward compatibility: a committed v4 baseline (no `planner`,
    /// no `ivm` sub-object) and a v5 one (no `ivm`) still parse — the
    /// absent gauges read as zero — so `bench compare` keeps working
    /// across the v5 and v6 schema bumps without a forced regeneration.
    #[test]
    fn pre_v6_baselines_parse_with_zeroed_late_gauges() {
        let report = BenchReport {
            entries: vec![entry("chain", "naive", 16, 1_000)],
        };
        let v6 = report.to_json();

        // A v5 file: no ivm object.
        let v5 = v6
            .replace(
                &format!("\"schema_version\":{BENCH_SCHEMA_VERSION}"),
                "\"schema_version\":5",
            )
            .replace(",\"ivm\":{\"overdeleted\":7,\"rederived\":4}", "");
        let parsed = BenchReport::from_json(&v5).unwrap();
        assert_eq!(parsed.entries[0].gauges.ivm_overdeleted, 0);
        assert_eq!(parsed.entries[0].gauges.ivm_rederived, 0);
        assert_eq!(parsed.entries[0].gauges.plan_joins_pruned, 2);

        // A v4 file: neither planner nor ivm.
        let v4 = v5
            .replace("\"schema_version\":5", "\"schema_version\":4")
            .replace(
                ",\"planner\":{\"joins_pruned\":2,\"subplans_shared\":1}",
                "",
            );
        let parsed = BenchReport::from_json(&v4).unwrap();
        assert_eq!(parsed.entries[0].gauges.plan_joins_pruned, 0);
        assert_eq!(parsed.entries[0].gauges.subplans_shared, 0);
        assert_eq!(parsed.entries[0].gauges.ivm_overdeleted, 0);
        // Everything present still round-trips exactly.
        assert_eq!(parsed.entries[0].gauges.probes, 30);
        assert_eq!(parsed.entries[0].wall.median, 1_000);
        // And comparing a v6 run against the v4 baseline works.
        let cmp = compare_reports(&report, &parsed, 2.0);
        assert_eq!(cmp.deltas.len(), 1);
    }

    #[test]
    fn comparison_flags_slowdowns_above_floor_and_threshold() {
        let base = BenchReport {
            entries: vec![entry("chain", "naive", 16, 1_000_000)],
        };
        let slow = BenchReport {
            entries: vec![entry("chain", "naive", 16, 5_000_000)],
        };
        let cmp = compare_reports(&slow, &base, 2.0);
        assert!(cmp.has_regression());
        assert!(cmp.deltas[0].time_regressed);
        // Same medians: no regression.
        let cmp = compare_reports(&base, &base, 2.0);
        assert!(!cmp.has_regression());
        // Big ratio but tiny absolute delta: below the floor, ignored.
        let tiny_base = BenchReport {
            entries: vec![entry("chain", "naive", 16, 100)],
        };
        let tiny_slow = BenchReport {
            entries: vec![entry("chain", "naive", 16, 900)],
        };
        assert!(!compare_reports(&tiny_slow, &tiny_base, 2.0).has_regression());
    }

    /// The while interpreter is allowed to trail semi-naive (it has no
    /// delta reasoning) but not by orders of magnitude: the gap bound
    /// pins the join-based assignment evaluator in place.
    #[test]
    fn comparison_bounds_the_while_engine_gap() {
        let fine = BenchReport {
            entries: vec![
                entry("chain", "seminaive", 64, 1_000_000),
                entry("chain", "while", 64, 20_000_000), // 20x: expected
            ],
        };
        let cmp = compare_reports(&fine, &fine, 2.0);
        assert_eq!(cmp.engine_gaps.len(), 1);
        assert!(!cmp.has_regression());

        let pathological = BenchReport {
            entries: vec![
                entry("chain", "seminaive", 64, 1_000_000),
                // The old O(|domain|^k) enumeration gap (~1600x).
                entry("chain", "while", 64, 1_600_000_000),
            ],
        };
        let cmp = compare_reports(&pathological, &pathological, 2.0);
        assert!(cmp.has_regression());
        assert!(cmp.engine_gaps[0].regressed);
        assert!(cmp.render().contains("WHILE GAP"), "{}", cmp.render());

        // Rows only pair at the same workload and size.
        let unmatched = BenchReport {
            entries: vec![
                entry("chain", "seminaive", 16, 1_000),
                entry("chain", "while", 64, 1_600_000_000),
            ],
        };
        let cmp = compare_reports(&unmatched, &unmatched, 2.0);
        assert!(cmp.engine_gaps.is_empty());
        assert!(!cmp.has_regression());
    }

    #[test]
    fn comparison_flags_work_drift_and_tracks_key_changes() {
        let base = BenchReport {
            entries: vec![
                entry("chain", "naive", 16, 1_000),
                entry("gone", "naive", 4, 10),
            ],
        };
        let mut drifted = entry("chain", "naive", 16, 1_000);
        drifted.gauges.facts_derived += 1;
        let new = BenchReport {
            entries: vec![drifted, entry("fresh", "magic", 8, 10)],
        };
        let cmp = compare_reports(&new, &base, 2.0);
        assert!(cmp.has_regression());
        assert!(cmp.deltas[0].work_drifted);
        assert_eq!(cmp.missing, vec!["gone/naive/4".to_string()]);
        assert_eq!(cmp.added, vec!["fresh/magic/8".to_string()]);
        let rendered = cmp.render();
        assert!(rendered.contains("WORK DRIFT"), "{rendered}");
        assert!(rendered.contains("only in baseline"), "{rendered}");
    }

    #[test]
    fn bytes_gauges_round_trip_and_gate_growth() {
        let report = BenchReport {
            entries: vec![entry("chain", "seminaive", 64, 1_000)],
        };
        let json = report.to_json();
        // The v4 fields land after interner_symbols, preserving the
        // line-prefix contract scripts/check.sh relies on.
        assert!(
            json.contains("\"bytes_peak\":4096,\"bytes_final\":2048"),
            "{json}"
        );
        assert!(json.contains("\"tuples_per_sec\":"), "{json}");
        assert_eq!(BenchReport::from_json(&json).unwrap(), report);

        let mut fat = entry("chain", "seminaive", 64, 1_000);
        fat.gauges.bytes_peak = 4096 * 3; // > 2x
        let cmp = compare_reports(
            &BenchReport {
                entries: vec![fat.clone()],
            },
            &report,
            2.0,
        );
        assert!(cmp.has_regression());
        assert!(cmp.deltas[0].bytes_regressed);
        assert!(cmp.render().contains("BYTES GREW"), "{}", cmp.render());
        // A zero-byte baseline (engine without accounting) never gates.
        let mut unaccounted = report.clone();
        unaccounted.entries[0].gauges.bytes_peak = 0;
        let cmp = compare_reports(&BenchReport { entries: vec![fat] }, &unaccounted, 2.0);
        assert!(!cmp.deltas[0].bytes_regressed);
    }

    #[test]
    fn tuples_per_sec_is_derived_from_median() {
        let e = entry("chain", "seminaive", 64, 1_000_000); // 1 ms, 10 facts
        assert_eq!(e.tuples_per_sec(), 10_000);
        let mut zero = entry("chain", "seminaive", 64, 1);
        zero.wall.median = 0;
        assert_eq!(zero.tuples_per_sec(), 0);
    }

    #[test]
    fn history_lines_round_trip_and_render_a_trajectory() {
        let report = BenchReport {
            entries: vec![
                entry("chain", "seminaive", 64, 1_000),
                entry("win", "wellfounded", 8, 500),
            ],
        };
        let run = HistoryRun::from_report(&report, "abc1234", "2026-08-07");
        let line = run.to_json_line();
        assert!(!line.contains('\n'), "one run = one line: {line}");
        assert_eq!(HistoryRun::from_json_line(&line).unwrap(), run);

        let mut newer = run.clone();
        newer.rev = "def5678".into();
        newer.points[0].median = 900;
        let history = BenchHistory {
            runs: vec![run, newer],
        };
        let parsed = BenchHistory::parse(&history.to_text()).unwrap();
        assert_eq!(parsed, history);
        let shown = history.render_trajectory();
        assert!(shown.contains("bench history: 2 run(s)"), "{shown}");
        assert!(shown.contains("abc1234"), "{shown}");
        assert!(shown.contains("chain/seminaive/64"), "{shown}");
        assert!(shown.contains("->"), "{shown}");

        assert!(HistoryRun::from_json_line("{}").is_err());
        assert!(BenchHistory::parse("not json").is_err());
        assert!(BenchHistory::parse("").unwrap().runs.is_empty());
    }

    #[test]
    fn history_gate_checks_bytes_and_work_but_never_time() {
        let base = BenchReport {
            entries: vec![entry("chain", "seminaive", 64, 1_000)],
        };
        let history = BenchHistory {
            runs: vec![HistoryRun::from_report(&base, "abc1234", "2026-08-07")],
        };
        // Identical work, wildly slower wall time: passes.
        let mut slow = base.clone();
        slow.entries[0].wall.median = 1_000_000_000;
        let cmp = compare_with_history(&slow, &history).unwrap();
        assert_eq!(cmp.checked, 1);
        assert!(cmp.passed(), "{}", cmp.render());
        assert_eq!(cmp.baseline_rev, "abc1234");
        // Byte growth past the factor: fails.
        let mut fat = base.clone();
        fat.entries[0].gauges.bytes_peak *= 3;
        let cmp = compare_with_history(&fat, &history).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.render().contains("bytes_peak"), "{}", cmp.render());
        // Derived-fact drift: fails.
        let mut drift = base.clone();
        drift.entries[0].gauges.facts_derived += 1;
        let cmp = compare_with_history(&drift, &history).unwrap();
        assert!(!cmp.passed());
        assert!(cmp.render().contains("facts_derived"), "{}", cmp.render());
        // Unmatched keys are skipped, empty history errs.
        let other = BenchReport {
            entries: vec![entry("grid", "seminaive", 8, 10)],
        };
        let cmp = compare_with_history(&other, &history).unwrap();
        assert_eq!(cmp.checked, 0);
        assert!(cmp.passed());
        assert!(compare_with_history(&base, &BenchHistory::default()).is_err());
    }

    #[test]
    fn table_lists_every_entry() {
        let report = BenchReport {
            entries: vec![entry("chain", "naive", 16, 42_000)],
        };
        let table = report.render_table();
        assert!(table.contains("chain/naive"), "{table}");
        assert!(table.contains("42.0µs"), "{table}");
    }
}

//! Domain values.
//!
//! The paper assumes an infinite set **dom** of constants. We realize it
//! as the disjoint union of interned symbolic constants, 64-bit integers,
//! and *invented* values (Section 4.3: `Datalog¬new` extends programs with
//! the ability to invent values outside the current active domain).
//!
//! `Value` is `Copy` (12 bytes, padded to 16), which keeps tuples flat and
//! valuation environments allocation-free.

use crate::interner::{Interner, Symbol};
use std::fmt;

/// A single domain element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// An interned symbolic constant such as `'a'` or `'paris'`.
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
    /// A value invented during evaluation of a `Datalog¬new` /
    /// `N-Datalog¬new` program. The payload is a fresh counter issued by
    /// the engine; invented values never collide with input constants.
    Invented(u64),
}

impl Value {
    /// Convenience constructor for interned symbols.
    pub fn sym(interner: &mut Interner, name: &str) -> Self {
        Value::Sym(interner.intern(name))
    }

    /// True for values produced by value invention rather than taken from
    /// the input or the program text.
    pub fn is_invented(self) -> bool {
        matches!(self, Value::Invented(_))
    }

    /// Renders the value for humans; symbols are resolved through the
    /// interner.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayValue<'a> {
        DisplayValue {
            value: self,
            interner,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl crate::space::HeapSize for Value {
    /// One logical value slot ([`crate::space::VALUE_BYTES`]); the enum
    /// is `Copy` and owns no heap storage.
    fn heap_bytes(&self) -> usize {
        crate::space::VALUE_BYTES
    }
}

/// Helper returned by [`Value::display`].
pub struct DisplayValue<'a> {
    value: &'a Value,
    interner: &'a Interner,
}

impl fmt::Display for DisplayValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Value::Sym(s) => write!(f, "'{}'", self.interner.name(*s)),
            Value::Int(i) => write!(f, "{i}"),
            Value::Invented(n) => write!(f, "@{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_small_and_copy() {
        // The engines rely on Value being cheap to copy.
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::Int(3);
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn display_forms() {
        let mut i = Interner::new();
        let s = Value::sym(&mut i, "a");
        assert_eq!(s.display(&i).to_string(), "'a'");
        assert_eq!(Value::Int(-7).display(&i).to_string(), "-7");
        assert_eq!(Value::Invented(3).display(&i).to_string(), "@3");
    }

    #[test]
    fn invented_detection() {
        assert!(Value::Invented(0).is_invented());
        assert!(!Value::Int(0).is_invented());
    }

    #[test]
    fn kinds_are_disjoint() {
        let mut i = Interner::new();
        let zero_sym = Value::sym(&mut i, "0");
        assert_ne!(zero_sym, Value::Int(0));
        assert_ne!(Value::Int(0), Value::Invented(0));
    }
}

//! # unchained-while
//!
//! The imperative *while* and *fixpoint* languages recalled in Section 2
//! of *Datalog Unchained* — the classical comparator languages of the
//! paper's expressiveness results:
//!
//! * **while**: relation variables, assignments `R := {x̄ | φ}` with
//!   `φ` first-order, and loops `while change do` / `while φ do`.
//!   Expresses the *while queries* (= Datalog¬¬; Theorem 4.8: db-pspace
//!   on ordered databases).
//! * **fixpoint**: the same language with *cumulative* assignments only
//!   (`R += φ`), which guarantees termination in polynomial time.
//!   Expresses the *fixpoint queries* (= inflationary Datalog¬,
//!   Theorem 4.2).
//! * the **witness operator** `W x̄ φ(x̄)` of \[14\] (Section 5.2):
//!   nondeterministically chooses one satisfying assignment, giving the
//!   nondeterministic fixpoint logics FO+IFP+W / FO+PFP+W.

pub mod ast;
pub mod display;
pub mod interp;
pub mod parse;

pub use ast::{Assignment, LoopCondition, Stmt, WhileProgram};
pub use display::display_program;
pub use interp::{run, run_traced, RunResult, WhileError, WitnessChooser};
pub use parse::parse_while_program;

//! Text syntax for while / fixpoint programs.
//!
//! Grammar (formulas follow `unchained_fo::text`):
//!
//! ```text
//! program ::= stmt*
//! stmt    ::= ident (":=" | "+=") "W"? "{" var ("," var)* "|" phi "}" ";"
//!           | ident (":=" | "+=") "W"? "{" "|" phi "}" ";"        (zero-ary)
//!           | "while" "change" "do" stmt* "end" ";"?
//!           | "while" "(" phi ")" "do" stmt* "end" ";"?
//! ```
//!
//! Example — the fixpoint program of Example 4.4 (`good` = nodes not
//! reachable from a cycle):
//!
//! ```text
//! while change do
//!   good += { x | forall y (G(y,x) -> good(y)) };
//! end
//! ```
//!
//! Variables are program-scoped (one [`VarSet`] for the whole program),
//! mirroring the relation-variable scoping of the language itself.

use crate::ast::{Assignment, LoopCondition, Stmt, WhileProgram};
use unchained_common::Interner;
use unchained_fo::text::{Cursor, TextError, Tok};
use unchained_fo::{FoVar, VarSet};

fn parse_stmt(cursor: &mut Cursor<'_>) -> Result<Stmt, TextError> {
    match cursor.peek().clone() {
        Tok::While => {
            cursor.bump();
            let condition = match cursor.peek() {
                Tok::Change => {
                    cursor.bump();
                    LoopCondition::Change
                }
                Tok::LParen => {
                    cursor.bump();
                    let phi = cursor.parse_formula()?;
                    cursor.expect(&Tok::RParen)?;
                    LoopCondition::Sentence(phi)
                }
                other => {
                    return Err(cursor.error(format!("expected `change` or `(φ)`, found {other}")))
                }
            };
            cursor.expect(&Tok::Do)?;
            let mut body = Vec::new();
            while cursor.peek() != &Tok::End {
                body.push(parse_stmt(cursor)?);
            }
            cursor.expect(&Tok::End)?;
            if cursor.peek() == &Tok::Semi {
                cursor.bump();
            }
            Ok(Stmt::While { condition, body })
        }
        Tok::Ident(name) => {
            cursor.bump();
            let target = cursor.interner.intern(&name);
            let mode = match cursor.bump() {
                Tok::Assign => Assignment::Replace,
                Tok::CumAssign => Assignment::Cumulate,
                other => return Err(cursor.error(format!("expected `:=` or `+=`, found {other}"))),
            };
            let witness = if cursor.peek() == &Tok::Witness {
                cursor.bump();
                true
            } else {
                false
            };
            cursor.expect(&Tok::LBrace)?;
            // Head variable list up to `|` (may be empty for zero-ary
            // relations).
            let mut vars: Vec<FoVar> = Vec::new();
            while cursor.peek() != &Tok::Bar {
                match cursor.bump() {
                    Tok::Ident(v) => {
                        vars.push(cursor.vars.var(&v));
                        if cursor.peek() == &Tok::Comma {
                            cursor.bump();
                        }
                    }
                    other => {
                        return Err(cursor.error(format!("expected variable or `|`, found {other}")))
                    }
                }
            }
            cursor.expect(&Tok::Bar)?;
            let formula = cursor.parse_formula()?;
            cursor.expect(&Tok::RBrace)?;
            cursor.expect(&Tok::Semi)?;
            if witness {
                Ok(Stmt::AssignWitness {
                    target,
                    vars,
                    formula,
                    mode,
                })
            } else {
                Ok(Stmt::Assign {
                    target,
                    vars,
                    formula,
                    mode,
                })
            }
        }
        other => Err(cursor.error(format!("expected statement, found {other}"))),
    }
}

/// Parses a while-language program. Returns the program together with
/// its variable namespace (useful for diagnostics).
pub fn parse_while_program(
    src: &str,
    interner: &mut Interner,
) -> Result<(WhileProgram, VarSet), TextError> {
    let mut vars = VarSet::new();
    let mut stmts = Vec::new();
    {
        let mut cursor = Cursor::new(src, interner, &mut vars)?;
        while !cursor.at_eof() {
            stmts.push(parse_stmt(&mut cursor)?);
        }
    }
    Ok((WhileProgram::new(stmts), vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run;
    use unchained_common::{Instance, Tuple, Value};

    fn line(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    #[test]
    fn fixpoint_tc_from_text() {
        let mut i = Interner::new();
        let (program, _) = parse_while_program(
            "while change do\n\
               T += { x, y | G(x,y) or exists z (T(x,z) & G(z,y)) };\n\
             end",
            &mut i,
        )
        .unwrap();
        assert!(program.is_fixpoint());
        let input = line(&mut i, 5);
        let result = run(&program, &input, 10_000, None).unwrap();
        let t = i.get("T").unwrap();
        assert_eq!(result.instance.relation(t).unwrap().len(), 10);
    }

    #[test]
    fn example_4_4_from_text() {
        let mut i = Interner::new();
        let (program, _) = parse_while_program(
            "while change do\n\
               good += { x | forall y (G(y,x) -> good(y)) };\n\
             end",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let good = i.get("good").unwrap();
        let mut input = Instance::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4), (6, 4)] {
            input.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let result = run(&program, &input, 10_000, None).unwrap();
        let rel = result.instance.relation(good).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([Value::Int(6)])));
    }

    #[test]
    fn destructive_assignment_and_sentence_loop() {
        // Repeatedly delete sinks from a working copy of G; the loop
        // drains acyclic graphs completely (a classic while query).
        let mut i = Interner::new();
        let (program, _) = parse_while_program(
            "E := { x, y | G(x,y) };\n\
              while (exists x, y (E(x,y))) do\n\
                E := { x, y | E(x,y) & exists z (E(y,z)) };\n\
              end",
            &mut i,
        )
        .unwrap();
        assert!(!program.is_fixpoint());
        let input = line(&mut i, 5);
        let result = run(&program, &input, 10_000, None).unwrap();
        let e = i.get("E").unwrap();
        assert!(result.instance.relation(e).unwrap().is_empty());
        assert!(result.iterations > 1);
    }

    #[test]
    fn witness_assignment_from_text() {
        let mut i = Interner::new();
        let (program, _) = parse_while_program("picked := W { x | R(x) };", &mut i).unwrap();
        assert!(program.has_witness());
        let r = i.get("R").unwrap();
        let mut input = Instance::new();
        for k in 0..5 {
            input.insert_fact(r, Tuple::from([Value::Int(k)]));
        }
        let mut chooser = |_n: usize| 2usize;
        let result = run(&program, &input, 100, Some(&mut chooser)).unwrap();
        let picked = i.get("picked").unwrap();
        let rel = result.instance.relation(picked).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([Value::Int(2)])));
    }

    #[test]
    fn zero_ary_assignment() {
        let mut i = Interner::new();
        let (program, _) = parse_while_program("flag := { | exists x (R(x)) };", &mut i).unwrap();
        let r = i.intern("R");
        let mut input = Instance::new();
        input.insert_fact(r, Tuple::from([Value::Int(1)]));
        let result = run(&program, &input, 10, None).unwrap();
        let flag = i.get("flag").unwrap();
        assert_eq!(result.instance.relation(flag).unwrap().len(), 1);
    }

    #[test]
    fn nested_loops() {
        let mut i = Interner::new();
        let (program, _) = parse_while_program(
            "while change do\n\
               A += { x | R(x) };\n\
               while change do\n\
                 B += { x | A(x) };\n\
               end\n\
             end",
            &mut i,
        )
        .unwrap();
        let r = i.get("R").unwrap();
        let mut input = Instance::new();
        input.insert_fact(r, Tuple::from([Value::Int(7)]));
        let result = run(&program, &input, 100, None).unwrap();
        let b = i.get("B").unwrap();
        assert_eq!(result.instance.relation(b).unwrap().len(), 1);
    }

    #[test]
    fn parse_errors() {
        let mut i = Interner::new();
        assert!(parse_while_program("T := { x | G(x) }", &mut i).is_err()); // missing ;
        assert!(parse_while_program("while do end", &mut i).is_err());
        assert!(parse_while_program("T = { x | G(x) };", &mut i).is_err());
        assert!(parse_while_program("while change do T += { x | G(x) };", &mut i).is_err());
    }
}

//! Interpreter for the while / fixpoint languages.

use crate::ast::{Assignment, LoopCondition, Stmt, WhileProgram};
use std::fmt;
use unchained_common::{FxHashMap, HeapSize, Instance, Relation, SpanKind, Telemetry, Value};
use unchained_fo::{eval_formula_joined, eval_sentence, FoError};

/// Supplies the choices of the witness operator `W`.
pub trait WitnessChooser {
    /// Picks an index in `0..n` among the satisfying assignments
    /// (sorted). Called with `n ≥ 1`.
    fn choose(&mut self, n: usize) -> usize;
}

/// A trivial chooser always picking the least satisfying assignment.
impl WitnessChooser for () {
    fn choose(&mut self, _n: usize) -> usize {
        0
    }
}

/// Any `FnMut(usize) -> usize` can serve as a chooser.
impl<F: FnMut(usize) -> usize> WitnessChooser for F {
    fn choose(&mut self, n: usize) -> usize {
        (self)(n).min(n - 1)
    }
}

/// Interpreter errors.
#[derive(Clone, PartialEq, Debug)]
pub enum WhileError {
    /// A formula evaluation failed.
    Fo(FoError),
    /// A loop exceeded the iteration budget (while programs need not
    /// terminate).
    IterationLimitExceeded(usize),
    /// The program revisited a state inside a sentence-guarded loop (it
    /// will never terminate).
    Diverged {
        /// Iteration at which a state repeated.
        iteration: usize,
    },
    /// The program uses the witness operator but no chooser was given.
    WitnessWithoutChooser,
}

impl fmt::Display for WhileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhileError::Fo(e) => write!(f, "{e}"),
            WhileError::IterationLimitExceeded(n) => {
                write!(f, "loop iteration limit {n} exceeded")
            }
            WhileError::Diverged { iteration } => {
                write!(f, "while-loop revisited a state at iteration {iteration}")
            }
            WhileError::WitnessWithoutChooser => {
                write!(
                    f,
                    "program uses the witness operator W but no chooser was supplied"
                )
            }
        }
    }
}

impl std::error::Error for WhileError {}

impl From<FoError> for WhileError {
    fn from(e: FoError) -> Self {
        WhileError::Fo(e)
    }
}

/// Result of a terminating while-program run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// The final instance (inputs plus every assigned relation).
    pub instance: Instance,
    /// Total number of loop-body executions across all loops.
    pub iterations: usize,
}

struct Interp<'c> {
    domain: Vec<Value>,
    max_iterations: usize,
    iterations: usize,
    chooser: Option<&'c mut dyn WitnessChooser>,
    tel: Telemetry,
}

impl Interp<'_> {
    fn exec_block(&mut self, stmts: &[Stmt], instance: &mut Instance) -> Result<bool, WhileError> {
        let mut changed = false;
        for stmt in stmts {
            changed |= self.exec(stmt, instance)?;
        }
        Ok(changed)
    }

    fn exec(&mut self, stmt: &Stmt, instance: &mut Instance) -> Result<bool, WhileError> {
        match stmt {
            Stmt::Assign {
                target,
                vars,
                formula,
                mode,
            } => {
                let rel = eval_formula_joined(formula, vars, instance, &self.domain)?;
                // Mid-assignment, the evaluated comprehension and the
                // instance are both live — that is the space peak.
                if self.tel.is_enabled() {
                    self.tel.sample_peak(
                        instance.fact_count() + rel.len(),
                        instance.heap_bytes() + rel.heap_bytes(),
                    );
                }
                Ok(apply_assignment(instance, *target, rel, *mode))
            }
            Stmt::AssignWitness {
                target,
                vars,
                formula,
                mode,
            } => {
                let rel = eval_formula_joined(formula, vars, instance, &self.domain)?;
                let chosen = if rel.is_empty() {
                    Relation::new(vars.len())
                } else {
                    let sorted = rel.sorted();
                    let chooser = self
                        .chooser
                        .as_deref_mut()
                        .ok_or(WhileError::WitnessWithoutChooser)?;
                    self.tel.with(|t| t.choice_points.push(sorted.len()));
                    let pick = chooser.choose(sorted.len()).min(sorted.len() - 1);
                    Relation::from_tuples(vars.len(), [sorted[pick].clone()])
                };
                Ok(apply_assignment(instance, *target, chosen, *mode))
            }
            Stmt::While { condition, body } => {
                let mut any_change = false;
                // Cycle detection for sentence-guarded loops (change-
                // guarded loops on cumulative bodies always terminate,
                // but Replace bodies can cycle there too, so track all).
                let mut seen: FxHashMap<u64, Vec<Instance>> = FxHashMap::default();
                loop {
                    let proceed = match condition {
                        LoopCondition::Change => true,
                        LoopCondition::Sentence(f) => eval_sentence(f, instance, &self.domain)?,
                    };
                    if !proceed {
                        return Ok(any_change);
                    }
                    self.iterations += 1;
                    if self.iterations > self.max_iterations {
                        return Err(WhileError::IterationLimitExceeded(self.max_iterations));
                    }
                    let tracer = self.tel.tracer().clone();
                    let round_guard =
                        tracer.span(SpanKind::Round, format!("iteration {}", self.iterations));
                    let changed = self.exec_block(body, instance)?;
                    tracer.gauge("facts", instance.fact_count() as u64);
                    tracer.gauge("changed", u64::from(changed));
                    drop(round_guard);
                    any_change |= changed;
                    match condition {
                        LoopCondition::Change => {
                            if !changed {
                                return Ok(any_change);
                            }
                        }
                        LoopCondition::Sentence(_) => {
                            // A repeated state under the same guard means
                            // the loop never exits.
                            let fp = instance.fingerprint();
                            let bucket = seen.entry(fp).or_default();
                            if bucket.iter().any(|i| i.same_facts(instance)) {
                                return Err(WhileError::Diverged {
                                    iteration: self.iterations,
                                });
                            }
                            bucket.push(instance.clone());
                        }
                    }
                }
            }
        }
    }
}

fn apply_assignment(
    instance: &mut Instance,
    target: unchained_common::Symbol,
    rel: Relation,
    mode: Assignment,
) -> bool {
    match mode {
        Assignment::Replace => {
            let changed = instance
                .relation(target)
                .is_none_or(|old| !old.same_tuples(&rel));
            let arity = rel.arity();
            *instance.ensure(target, arity) = rel;
            changed
        }
        Assignment::Cumulate => {
            let arity = rel.arity();
            instance.ensure(target, arity).union_with(&rel) > 0
        }
    }
}

/// Runs `program` on `input`.
///
/// The evaluation domain is `adom(input) ∪ constants(program)`, fixed
/// for the whole run (assignments only produce tuples over this
/// domain, mirroring the genericity of the language). `max_iterations`
/// bounds the *total* number of loop-body executions; `chooser` is
/// required iff the program uses the witness operator.
pub fn run(
    program: &WhileProgram,
    input: &Instance,
    max_iterations: usize,
    chooser: Option<&mut dyn WitnessChooser>,
) -> Result<RunResult, WhileError> {
    run_traced(program, input, max_iterations, chooser, Telemetry::off())
}

/// Like [`run`], but records loop iterations and witness choice points
/// into `telemetry` (engine name `"while"`). The trace is finished
/// even when the run fails, so budget and divergence errors still
/// carry the partial picture.
pub fn run_traced(
    program: &WhileProgram,
    input: &Instance,
    max_iterations: usize,
    mut chooser: Option<&mut dyn WitnessChooser>,
    telemetry: Telemetry,
) -> Result<RunResult, WhileError> {
    if program.has_witness() && chooser.is_none() {
        return Err(WhileError::WitnessWithoutChooser);
    }
    let mut domain: Vec<Value> = input.adom().into_iter().collect();
    domain.extend(program.constants());
    domain.sort_unstable();
    domain.dedup();

    let mut instance = input.clone();
    // Relation variables start out empty (like the `good += ∅`
    // initialization of Example 4.4); create them up front so formulas
    // may mention a relation before its first assignment executes.
    fn declare(stmts: &[Stmt], instance: &mut Instance) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, vars, .. } | Stmt::AssignWitness { target, vars, .. } => {
                    if instance.relation(*target).is_none() {
                        instance.ensure(*target, vars.len());
                    }
                }
                Stmt::While { body, .. } => declare(body, instance),
            }
        }
    }
    declare(&program.stmts, &mut instance);
    telemetry.begin("while");
    let run_sw = telemetry.stopwatch();
    let tracer = telemetry.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "while");
    let mut interp = Interp {
        domain,
        max_iterations,
        iterations: 0,
        chooser: chooser.take(),
        tel: telemetry.clone(),
    };
    let outcome = interp.exec_block(&program.stmts, &mut instance);
    tracer.gauge("iterations", interp.iterations as u64);
    tracer.gauge("final_facts", instance.fact_count() as u64);
    drop(eval_guard);
    telemetry.with(|t| t.loop_iterations = interp.iterations);
    telemetry.with(|t| t.bytes_final = instance.heap_bytes() as u64);
    telemetry.finish(&run_sw, instance.fact_count());
    outcome?;
    Ok(RunResult {
        instance,
        iterations: interp.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Symbol, Tuple};
    use unchained_fo::{FoTerm, Formula, VarSet};

    fn line(interner: &mut Interner, n: i64) -> (Symbol, Instance) {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        (g, inst)
    }

    /// The transitive-closure fixpoint program:
    /// `while change do T += {(x,y) | G(x,y) ∨ ∃z(T(x,z) ∧ G(z,y))}`.
    fn tc_program(g: Symbol, t: Symbol) -> WhileProgram {
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        let phi = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).or(Formula::exists(
            [z],
            Formula::Atom(t, vec![FoTerm::Var(x), FoTerm::Var(z)])
                .and(Formula::Atom(g, vec![FoTerm::Var(z), FoTerm::Var(y)])),
        ));
        WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Change,
            body: vec![Stmt::Assign {
                target: t,
                vars: vec![x, y],
                formula: phi,
                mode: Assignment::Cumulate,
            }],
        }])
    }

    #[test]
    fn fixpoint_transitive_closure() {
        let mut i = Interner::new();
        let (g, input) = line(&mut i, 5);
        let t = i.intern("T");
        let program = tc_program(g, t);
        assert!(program.is_fixpoint());
        let result = run(&program, &input, 1000, None).unwrap();
        assert_eq!(result.instance.relation(t).unwrap().len(), 10);
    }

    #[test]
    fn while_with_replacement_computes_sink_set() {
        // sinks := {x | ∀y ¬G(x,y)} — one straight-line assignment.
        let mut i = Interner::new();
        let (g, input) = line(&mut i, 4);
        let sinks = i.intern("sinks");
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let program = WhileProgram::new(vec![Stmt::Assign {
            target: sinks,
            vars: vec![x],
            formula: Formula::forall(
                [y],
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).not(),
            ),
            mode: Assignment::Replace,
        }]);
        let result = run(&program, &input, 10, None).unwrap();
        let rel = result.instance.relation(sinks).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([Value::Int(3)])));
    }

    #[test]
    fn example_4_4_good_nodes() {
        // The paper's Example 4.4:
        //   good += ∅; while change do good += {x | ∀y (G(y,x) → good(y))}
        // computes the nodes not reachable from a cycle.
        let mut i = Interner::new();
        let g = i.intern("G");
        let good = i.intern("good");
        let mut input = Instance::new();
        let v = Value::Int;
        // Graph: cycle 1→2→3→1, plus 3→4→5, and isolated-source 6→4.
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (6, 4)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
        }
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let phi = Formula::forall(
            [y],
            Formula::Atom(g, vec![FoTerm::Var(y), FoTerm::Var(x)])
                .implies(Formula::Atom(good, vec![FoTerm::Var(y)])),
        );
        let program = WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Change,
            body: vec![Stmt::Assign {
                target: good,
                vars: vec![x],
                formula: phi,
                mode: Assignment::Cumulate,
            }],
        }]);
        assert!(program.is_fixpoint());
        let result = run(&program, &input, 1000, None).unwrap();
        let rel = result.instance.relation(good).unwrap();
        // 1,2,3 are on a cycle; 4,5 are reachable from it. Only 6 is
        // good among non-cycle nodes... and 6 has no predecessors, so
        // good = {6}.
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([v(6)])));
    }

    #[test]
    fn sentence_guard_terminates_when_false() {
        let mut i = Interner::new();
        let (g, input) = line(&mut i, 3);
        let r = i.intern("R");
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        // while ∃x G(x,x) do R := true — guard false immediately.
        let program = WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Sentence(Formula::exists(
                [x, y],
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)])
                    .and(Formula::Eq(FoTerm::Var(x), FoTerm::Var(y))),
            )),
            body: vec![Stmt::Assign {
                target: r,
                vars: vec![],
                formula: Formula::True,
                mode: Assignment::Cumulate,
            }],
        }]);
        let result = run(&program, &input, 10, None).unwrap();
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn infinite_loop_detected() {
        // while true do R := R (no state change → divergence detected
        // at the second iteration).
        let mut i = Interner::new();
        let r = i.intern("R");
        let program = WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Sentence(Formula::True),
            body: vec![Stmt::Assign {
                target: r,
                vars: vec![],
                formula: Formula::False,
                mode: Assignment::Replace,
            }],
        }]);
        assert!(matches!(
            run(&program, &Instance::new(), 100, None),
            Err(WhileError::Diverged { .. })
        ));
    }

    #[test]
    fn iteration_budget_enforced() {
        let mut i = Interner::new();
        let (g, input) = line(&mut i, 20);
        let t = i.intern("T");
        let program = tc_program(g, t);
        assert!(matches!(
            run(&program, &input, 3, None),
            Err(WhileError::IterationLimitExceeded(3))
        ));
    }

    #[test]
    fn witness_requires_chooser_and_picks_one() {
        let mut i = Interner::new();
        let (g, input) = line(&mut i, 4);
        let pick = i.intern("pick");
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let program = WhileProgram::new(vec![Stmt::AssignWitness {
            target: pick,
            vars: vec![x, y],
            formula: Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
            mode: Assignment::Replace,
        }]);
        assert!(matches!(
            run(&program, &input, 10, None),
            Err(WhileError::WitnessWithoutChooser)
        ));
        let mut chooser = |_n: usize| 1usize;
        let result = run(&program, &input, 10, Some(&mut chooser)).unwrap();
        let rel = result.instance.relation(pick).unwrap();
        assert_eq!(rel.len(), 1);
        // Sorted edges of the 4-line: (0,1),(1,2),(2,3); index 1 = (1,2).
        assert!(rel.contains(&Tuple::from([Value::Int(1), Value::Int(2)])));
    }

    #[test]
    fn witness_on_empty_relation_assigns_empty() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let pick = i.intern("pick");
        let mut input = Instance::new();
        input.ensure(g, 2);
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let program = WhileProgram::new(vec![Stmt::AssignWitness {
            target: pick,
            vars: vec![x, y],
            formula: Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
            mode: Assignment::Replace,
        }]);
        let mut chooser = |_n: usize| 0usize;
        let result = run(&program, &input, 10, Some(&mut chooser)).unwrap();
        assert!(result.instance.relation(pick).unwrap().is_empty());
    }
}

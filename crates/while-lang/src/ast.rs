//! Abstract syntax of the while / fixpoint languages.

use unchained_common::{FxHashSet, Symbol, Value};
use unchained_fo::{FoVar, Formula};

/// Assignment mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Assignment {
    /// `R := {x̄ | φ}` — destructive replacement (*while* only).
    Replace,
    /// `R += {x̄ | φ}` — cumulative (the *fixpoint* discipline; using
    /// only this mode guarantees polynomial-time termination).
    Cumulate,
}

/// Loop guard.
#[derive(Clone, PartialEq, Debug)]
pub enum LoopCondition {
    /// `while change do …` — iterate while the body modifies some
    /// relation.
    Change,
    /// `while φ do …` — iterate while the FO sentence `φ` holds.
    Sentence(Formula),
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `target (:=|+=) { vars | formula }`.
    Assign {
        /// The relation variable assigned.
        target: Symbol,
        /// The result tuple shape (free variables of the comprehension).
        vars: Vec<FoVar>,
        /// The defining FO formula; its free variables must be ⊆ `vars`.
        formula: Formula,
        /// Replace or cumulate.
        mode: Assignment,
    },
    /// `target (:=|+=) W { vars | formula }` — the witness operator:
    /// nondeterministically choose *one* satisfying assignment (or none
    /// if the formula is unsatisfiable).
    AssignWitness {
        /// The relation variable assigned.
        target: Symbol,
        /// The result tuple shape.
        vars: Vec<FoVar>,
        /// The defining FO formula.
        formula: Formula,
        /// Replace or cumulate.
        mode: Assignment,
    },
    /// A loop.
    While {
        /// The guard.
        condition: LoopCondition,
        /// The body.
        body: Vec<Stmt>,
    },
}

/// A while-language program.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct WhileProgram {
    /// The statements, executed in order.
    pub stmts: Vec<Stmt>,
}

impl WhileProgram {
    /// Creates a program.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        WhileProgram { stmts }
    }

    /// True iff the program is in the *fixpoint* sublanguage: every
    /// assignment is cumulative and every loop guard is `change`.
    /// Such programs always terminate in polynomially many steps.
    pub fn is_fixpoint(&self) -> bool {
        fn check(stmts: &[Stmt]) -> bool {
            stmts.iter().all(|s| match s {
                Stmt::Assign { mode, .. } | Stmt::AssignWitness { mode, .. } => {
                    *mode == Assignment::Cumulate
                }
                Stmt::While { condition, body } => {
                    matches!(condition, LoopCondition::Change) && check(body)
                }
            })
        }
        check(&self.stmts)
    }

    /// True iff the program uses the witness operator (then it denotes a
    /// nondeterministic query).
    pub fn has_witness(&self) -> bool {
        fn check(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::AssignWitness { .. } => true,
                Stmt::While { body, .. } => check(body),
                Stmt::Assign { .. } => false,
            })
        }
        check(&self.stmts)
    }

    /// Relation symbols assigned anywhere in the program.
    pub fn assigned(&self) -> Vec<Symbol> {
        fn collect(stmts: &[Stmt], out: &mut Vec<Symbol>) {
            for s in stmts {
                match s {
                    Stmt::Assign { target, .. } | Stmt::AssignWitness { target, .. } => {
                        out.push(*target)
                    }
                    Stmt::While { body, .. } => collect(body, out),
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.stmts, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Constants mentioned in any formula of the program (they join the
    /// evaluation domain).
    pub fn constants(&self) -> Vec<Value> {
        fn from_formula(f: &Formula, out: &mut FxHashSet<Value>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(_, terms) => {
                    for t in terms {
                        if let unchained_fo::FoTerm::Const(v) = t {
                            out.insert(*v);
                        }
                    }
                }
                Formula::Eq(l, r) => {
                    for t in [l, r] {
                        if let unchained_fo::FoTerm::Const(v) = t {
                            out.insert(*v);
                        }
                    }
                }
                Formula::Not(inner) => from_formula(inner, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for f in fs {
                        from_formula(f, out);
                    }
                }
                Formula::Exists(_, inner) | Formula::Forall(_, inner) => from_formula(inner, out),
            }
        }
        fn walk(stmts: &[Stmt], out: &mut FxHashSet<Value>) {
            for s in stmts {
                match s {
                    Stmt::Assign { formula, .. } | Stmt::AssignWitness { formula, .. } => {
                        from_formula(formula, out)
                    }
                    Stmt::While { condition, body } => {
                        if let LoopCondition::Sentence(f) = condition {
                            from_formula(f, out);
                        }
                        walk(body, out);
                    }
                }
            }
        }
        let mut set = FxHashSet::default();
        walk(&self.stmts, &mut set);
        let mut v: Vec<Value> = set.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_fo::{FoTerm, VarSet};

    fn tc_fixpoint_program(interner: &mut Interner) -> WhileProgram {
        // T += {(x,y) | G(x,y) ∨ ∃z (G(x,z) ∧ T(z,y))}; while change.
        let g = interner.intern("G");
        let t = interner.intern("T");
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        let phi = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).or(Formula::exists(
            [z],
            Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(z)])
                .and(Formula::Atom(t, vec![FoTerm::Var(z), FoTerm::Var(y)])),
        ));
        WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Change,
            body: vec![Stmt::Assign {
                target: t,
                vars: vec![x, y],
                formula: phi,
                mode: Assignment::Cumulate,
            }],
        }])
    }

    #[test]
    fn fixpoint_discipline_detected() {
        let mut i = Interner::new();
        let p = tc_fixpoint_program(&mut i);
        assert!(p.is_fixpoint());
        assert!(!p.has_witness());
        let t = i.get("T").unwrap();
        assert_eq!(p.assigned(), vec![t]);
    }

    #[test]
    fn replace_breaks_fixpoint_discipline() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let p = WhileProgram::new(vec![Stmt::Assign {
            target: r,
            vars: vec![],
            formula: Formula::True,
            mode: Assignment::Replace,
        }]);
        assert!(!p.is_fixpoint());
    }

    #[test]
    fn sentence_guard_breaks_fixpoint_discipline() {
        let i = &mut Interner::new();
        let r = i.intern("R");
        let p = WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Sentence(Formula::True),
            body: vec![Stmt::Assign {
                target: r,
                vars: vec![],
                formula: Formula::True,
                mode: Assignment::Cumulate,
            }],
        }]);
        assert!(!p.is_fixpoint());
    }

    #[test]
    fn constants_collected() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let p = WhileProgram::new(vec![Stmt::Assign {
            target: r,
            vars: vec![x],
            formula: Formula::Eq(FoTerm::Var(x), FoTerm::Const(Value::Int(5))),
            mode: Assignment::Cumulate,
        }]);
        assert_eq!(p.constants(), vec![Value::Int(5)]);
    }

    #[test]
    fn witness_detected_in_nested_loops() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let p = WhileProgram::new(vec![Stmt::While {
            condition: LoopCondition::Change,
            body: vec![Stmt::AssignWitness {
                target: r,
                vars: vec![],
                formula: Formula::False,
                mode: Assignment::Cumulate,
            }],
        }]);
        assert!(p.has_witness());
    }
}

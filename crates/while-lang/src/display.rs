//! Pretty-printing of while-language programs in the concrete syntax
//! accepted by [`crate::parse::parse_while_program`].

use crate::ast::{Assignment, LoopCondition, Stmt, WhileProgram};
use std::fmt;
use unchained_common::Interner;
use unchained_fo::{display_formula, VarSet};

/// Helper returned by [`display_program`].
pub struct DisplayWhile<'a> {
    program: &'a WhileProgram,
    vars: &'a VarSet,
    interner: &'a Interner,
}

/// Renders `program` in the parseable text syntax. `vars` must be the
/// variable namespace the program was built with.
pub fn display_program<'a>(
    program: &'a WhileProgram,
    vars: &'a VarSet,
    interner: &'a Interner,
) -> DisplayWhile<'a> {
    DisplayWhile {
        program,
        vars,
        interner,
    }
}

fn write_stmt(
    f: &mut fmt::Formatter<'_>,
    stmt: &Stmt,
    vars: &VarSet,
    interner: &Interner,
    indent: usize,
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::Assign {
            target,
            vars: head,
            formula,
            mode,
        }
        | Stmt::AssignWitness {
            target,
            vars: head,
            formula,
            mode,
        } => {
            let op = match mode {
                Assignment::Replace => ":=",
                Assignment::Cumulate => "+=",
            };
            let witness = if matches!(stmt, Stmt::AssignWitness { .. }) {
                "W "
            } else {
                ""
            };
            let head_vars = head
                .iter()
                .map(|v| vars.name(*v).to_string())
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(
                f,
                "{pad}{} {op} {witness}{{ {head_vars} | {} }};",
                interner.name(*target),
                display_formula(formula, vars, interner)
            )
        }
        Stmt::While { condition, body } => {
            match condition {
                LoopCondition::Change => writeln!(f, "{pad}while change do")?,
                LoopCondition::Sentence(phi) => writeln!(
                    f,
                    "{pad}while ({}) do",
                    display_formula(phi, vars, interner)
                )?,
            }
            for s in body {
                write_stmt(f, s, vars, interner, indent + 1)?;
            }
            writeln!(f, "{pad}end")
        }
    }
}

impl fmt::Display for DisplayWhile<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stmt in &self.program.stmts {
            write_stmt(f, stmt, self.vars, self.interner, 0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_while_program;

    fn roundtrip(src: &str) {
        let mut i1 = Interner::new();
        let (p1, v1) = parse_while_program(src, &mut i1).unwrap();
        let shown1 = display_program(&p1, &v1, &i1).to_string();
        let mut i2 = Interner::new();
        let (p2, v2) = parse_while_program(&shown1, &mut i2).unwrap();
        let shown2 = display_program(&p2, &v2, &i2).to_string();
        assert_eq!(shown1, shown2, "source:\n{src}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("T += { x, y | G(x,y) };");
        roundtrip(
            "while change do\n\
               good += { x | forall y (G(y,x) -> good(y)) };\n\
             end",
        );
        roundtrip("picked := W { x | R(x) & x != 3 };");
        roundtrip(
            "E := { x, y | G(x,y) };\n\
             while (exists x, y (E(x,y))) do\n\
               E := { x, y | E(x,y) & exists z (E(y,z)) };\n\
             end",
        );
        roundtrip("flag := { | exists x (R(x)) or false };");
    }

    #[test]
    fn display_is_readable() {
        let mut i = Interner::new();
        let (p, v) = parse_while_program("while change do T += { x | G(x) }; end", &mut i).unwrap();
        let shown = display_program(&p, &v, &i).to_string();
        assert_eq!(shown, "while change do\n  T += { x | G(x) };\nend\n");
    }
}

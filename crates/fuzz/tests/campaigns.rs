//! Integration tests for the differential fuzzer: every campaign runs
//! clean at a small budget, and a full run is bit-for-bit deterministic.

use unchained_fuzz::{run_campaign, Campaign, Fault, FuzzOptions};

fn options(campaign: Campaign, seed: u64, budget: usize) -> FuzzOptions {
    let mut opts = FuzzOptions {
        campaign,
        seed,
        budget,
        fault: Fault::None,
        corpus_dir: None,
        ..FuzzOptions::default()
    };
    // The scale campaign defaults to 10^4–10^5-fact instances for the
    // release-build gate; debug-build tests shrink the digraphs (the
    // differential properties are size-free, only the gate needs bulk).
    if campaign == Campaign::Scale {
        opts.grammar.scale_edges = 512;
    }
    opts
}

#[test]
fn every_campaign_runs_clean_at_small_budget() {
    for campaign in Campaign::all() {
        let (report, repros) = run_campaign(&options(campaign, 7, 15)).expect("campaign runs");
        assert_eq!(
            report.divergences,
            0,
            "campaign {} diverged: {}",
            campaign.name(),
            report.to_json()
        );
        assert!(repros.is_empty());
        assert_eq!(report.programs + report.skipped, 15);
        assert!(report.oracle_runs > 0, "oracle must actually run");
        assert!(report.comparisons >= report.oracle_runs - report.programs * 2);
    }
}

/// At the default (gate) configuration, scale-campaign instances hit
/// the advertised 10^4-fact floor — checked on generation alone so the
/// debug build never evaluates one.
#[test]
fn scale_campaign_instances_reach_ten_thousand_facts_by_default() {
    use unchained_common::Interner;
    use unchained_fuzz::GrammarConfig;
    let mut i = Interner::new();
    let (_, instance) =
        unchained_fuzz::grammar::generate(&mut i, Campaign::Scale, GrammarConfig::default(), 1);
    assert!(
        instance.fact_count() >= 10_000,
        "scale edb too small: {}",
        instance.fact_count()
    );
}

#[test]
fn identical_options_give_identical_reports() {
    for campaign in [Campaign::Positive, Campaign::Negation] {
        let a = run_campaign(&options(campaign, 42, 25)).expect("first run");
        let b = run_campaign(&options(campaign, 42, 25)).expect("second run");
        assert_eq!(a.0.to_json(), b.0.to_json());
        assert_eq!(a.1.len(), b.1.len());
    }
}

/// The shrinker self-test for the incremental campaign: with the
/// drop-max-fact fault riding on the session's final answer, any edit
/// script that leaves the idb nonempty diverges — and the shrinker must
/// still walk the witness down to a tiny stratified program.
#[test]
fn edit_script_fault_injection_shrinks_to_minimal_repros() {
    let opts = FuzzOptions {
        fault: Fault::DropMaxFact,
        ..options(Campaign::EditScript, 7, 20)
    };
    let (report, repros) = run_campaign(&opts).expect("faulted run");
    assert!(report.divergences > 0, "fault must be observable");
    assert_eq!(repros.len(), report.divergences);
    for repro in &repros {
        assert!(
            repro.program.rules.len() <= 3,
            "repro not minimal: {} rules",
            repro.program.rules.len()
        );
    }
}

#[test]
fn fault_injection_produces_divergences_and_minimal_repros() {
    let opts = FuzzOptions {
        fault: Fault::DropMaxFact,
        ..options(Campaign::Positive, 7, 20)
    };
    let (report, repros) = run_campaign(&opts).expect("faulted run");
    assert!(report.divergences > 0, "fault must be observable");
    assert!(report.fault_injected);
    assert_eq!(repros.len(), report.divergences);
    assert!(report.shrink_steps > 0, "shrinker must have reduced repros");
    for repro in &repros {
        assert!(
            repro.program.rules.len() <= 3,
            "repro not minimal: {} rules",
            repro.program.rules.len()
        );
    }
}

//! The differential oracle: one program, every applicable engine, all
//! answers compared.
//!
//! Per campaign the matrix is:
//!
//! | campaign | engines | metamorphic checks |
//! |---|---|---|
//! | positive | naive, semi-naive, stratified, magic, semi-naive@{2,4,8}, while-translation | edb-monotonicity, rule permutation |
//! | negation | stratified, well-founded, stratified@{2,4,8}, while-translation | rule/stratum permutation |
//! | invention | invention ×2 (determinism), invention@4 | — |
//! | nondet | seeded run ×2 (determinism), poss/cert containment | — |
//! | planner | stratified syntactic-plan vs cost-plan, cost-plan@{2,4,8}, syntactic-plan@4 | stage-count equality |
//! | edits | incremental session vs from-scratch stratified, after every poll of a seeded edit script, @{1,4} | edb-mirror fidelity |
//! | scale | stratified@1 vs morsel-parallel@{2,4,8} on 10^4–10^5-fact layered digraphs, plus an incremental edit-script pass@4 | stage-count equality, edb-mirror fidelity |
//!
//! A `Fault` injects a deliberate wrong answer into one extra matrix
//! entry — the shrinker's self-test: with the fault enabled the oracle
//! must diverge on any program that derives at least one idb fact, and
//! the shrinker must walk that divergence down to a ≤ 3-rule repro.

use unchained_common::{Instance, Interner, Rng, Symbol, Tuple, Value};
use unchained_core::{
    invention, magic, naive, seminaive, stratified, wellfounded, EvalOptions, IncrementalSession,
    PlanMode,
};
use unchained_nondet::{poss_cert, run_once, EffOptions, NondetProgram, RandomChooser};
use unchained_parser::Program;

use crate::grammar::Campaign;
use crate::translate::to_while;

/// Deliberate engine fault for the shrinker self-test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// All engines honest.
    None,
    /// One extra matrix entry drops the largest derived idb fact —
    /// wrong on every program whose answer is nonempty.
    DropMaxFact,
}

/// A detected disagreement between two oracle legs.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Name of the reference leg.
    pub left: &'static str,
    /// Name of the disagreeing leg.
    pub right: &'static str,
    /// Human-readable detail (fact counts, stage counts, …).
    pub detail: String,
}

/// What one oracle invocation did.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Engine invocations performed.
    pub oracle_runs: usize,
    /// Pairwise comparisons / property checks performed.
    pub comparisons: usize,
    /// First disagreement found, if any.
    pub divergence: Option<Divergence>,
    /// True if the reference engine could not evaluate the program
    /// (budget); the program is skipped, not counted as divergent.
    pub skipped: bool,
}

impl Outcome {
    fn diverge(&mut self, left: &'static str, right: &'static str, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(Divergence {
                left,
                right,
                detail,
            });
        }
    }
}

fn opts(threads: usize) -> EvalOptions {
    // Thread count is always set explicitly so FUZZ output is identical
    // whether or not UNCHAINED_THREADS is exported.
    EvalOptions::default()
        .with_max_stages(500)
        .with_max_facts(100_000)
        .with_threads(threads)
}

/// The input instance with every program relation present (empty where
/// the generator produced no facts), so all engines and the while
/// interpreter see the same schema.
fn prepared(program: &Program, input: &Instance) -> Instance {
    let mut out = input.clone();
    if let Ok(schema) = program.schema() {
        for pred in program.edb() {
            if let Some(arity) = schema.arity(pred) {
                out.ensure(pred, arity);
            }
        }
    }
    out
}

/// All facts of `instance`, in deterministic (symbol, tuple) order.
pub(crate) fn fact_list(instance: &Instance) -> Vec<(Symbol, Tuple)> {
    let mut out = Vec::new();
    for (sym, rel) in instance.iter() {
        for t in rel.sorted().iter() {
            out.push((sym, t.clone()));
        }
    }
    out
}

/// Rebuilds `instance` without the facts selected by `drop`.
pub(crate) fn without_facts(instance: &Instance, drop: impl Fn(usize) -> bool) -> Instance {
    let mut out = Instance::new();
    for (sym, rel) in instance.iter() {
        out.ensure(sym, rel.arity());
    }
    for (i, (sym, tuple)) in fact_list(instance).into_iter().enumerate() {
        if !drop(i) {
            out.insert_fact(sym, tuple);
        }
    }
    out
}

/// The faulty leg: the reference answer minus its largest fact.
fn drop_max_fact(answer: &Instance) -> Instance {
    let n = fact_list(answer).len();
    if n == 0 {
        return answer.clone();
    }
    without_facts(answer, |i| i == n - 1)
}

fn compare(
    outcome: &mut Outcome,
    left: &'static str,
    right: &'static str,
    a: &Instance,
    b: &Instance,
) {
    outcome.comparisons += 1;
    if !a.same_facts(b) {
        outcome.diverge(
            left,
            right,
            format!("{} vs {} idb facts", a.fact_count(), b.fact_count()),
        );
    }
}

/// Runs the full oracle matrix for `campaign` on one program/instance
/// pair. `interner` must be the one the program was built against
/// (magic rewriting interns adorned predicate names); `run_seed` drives
/// the nondeterministic campaign's seeded choosers.
pub fn check(
    campaign: Campaign,
    program: &Program,
    input: &Instance,
    interner: &mut Interner,
    run_seed: u64,
    fault: Fault,
) -> Outcome {
    let input = prepared(program, input);
    match campaign {
        Campaign::Positive => positive(program, &input, interner, fault),
        Campaign::Negation => negation(program, &input, fault),
        Campaign::Invention => invention_campaign(program, &input, fault),
        Campaign::Nondet => nondet(program, &input, run_seed, fault),
        Campaign::Planner => planner(program, &input, fault),
        Campaign::EditScript => edit_script_campaign(program, &input, run_seed, fault),
        Campaign::Scale => scale_campaign(program, &input, run_seed, fault),
    }
}

/// One queued EDB edit: `true` inserts the tuple, `false` retracts it.
type Edit = (bool, Symbol, Tuple);

/// Derives a deterministic edit script from `seed`: a few batches of
/// inserts and retracts against the program's edb relations.
/// Retractions target facts actually present after the preceding edits
/// (tracked in a mirror), so the delete/rederive machinery is genuinely
/// exercised; insertions draw from a slightly larger universe than the
/// generator's, so both redundant and novel facts occur.
fn edit_script(program: &Program, input: &Instance, seed: u64) -> Vec<Vec<Edit>> {
    let Ok(schema) = program.schema() else {
        return Vec::new();
    };
    let mut preds: Vec<(Symbol, usize)> = program
        .edb()
        .into_iter()
        .filter_map(|p| schema.arity(p).map(|a| (p, a)))
        .collect();
    preds.sort_unstable_by_key(|&(p, _)| p);
    if preds.is_empty() {
        return Vec::new();
    }
    let mut rng = Rng::seeded(seed);
    let mut mirror = input.clone();
    let batches = 2 + rng.gen_index(3);
    let mut script = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Vec::new();
        for _ in 0..1 + rng.gen_index(3) {
            let (pred, arity) = preds[rng.gen_index(preds.len())];
            let existing: Vec<Tuple> = mirror
                .relation(pred)
                .map(|r| r.sorted().iter().cloned().collect())
                .unwrap_or_default();
            if !existing.is_empty() && rng.gen_bool(0.5) {
                let tuple = existing[rng.gen_index(existing.len())].clone();
                mirror.retract_fact(pred, &tuple);
                batch.push((false, pred, tuple));
            } else {
                let tuple: Tuple = (0..arity)
                    .map(|_| Value::Int(rng.gen_range_i64(0, 6)))
                    .collect();
                mirror.insert_fact(pred, tuple.clone());
                batch.push((true, pred, tuple));
            }
        }
        script.push(batch);
    }
    script
}

/// Edit-script differential: an [`IncrementalSession`] fed a seeded
/// script of insert/retract batches must agree with a from-scratch
/// stratified evaluation of the edited edb after **every** poll — both
/// the idb answer and the maintained edb mirror — at one and at four
/// worker threads.
fn edit_script_campaign(
    program: &Program,
    input: &Instance,
    run_seed: u64,
    fault: Fault,
) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    if stratified::eval(program, input, opts(1)).is_err() {
        out.skipped = true;
        return out;
    }
    let script = edit_script(program, input, run_seed);
    if script.is_empty() {
        out.skipped = true;
        return out;
    }

    let mut final_answer = None;
    for threads in [1usize, 4] {
        out.oracle_runs += 1;
        let leg = if threads == 1 { "ivm" } else { "ivm-parallel" };
        let mut session = match IncrementalSession::new(program.clone(), input, opts(threads)) {
            Ok(s) => s,
            Err(e) => {
                out.diverge("from-scratch", leg, format!("session init failed: {e}"));
                return out;
            }
        };
        let mut edb = input.clone();
        for batch in &script {
            for (insert, pred, tuple) in batch {
                let queued = if *insert {
                    edb.insert_fact(*pred, tuple.clone());
                    session.insert(*pred, tuple.clone())
                } else {
                    edb.retract_fact(*pred, tuple);
                    session.retract(*pred, tuple.clone())
                };
                if let Err(e) = queued {
                    out.diverge("from-scratch", leg, format!("edit rejected: {e}"));
                    return out;
                }
            }
            out.oracle_runs += 1;
            if let Err(e) = session.poll() {
                out.diverge("from-scratch", leg, format!("poll failed: {e}"));
                return out;
            }
            let Ok(scratch) = stratified::eval(program, &edb, opts(1)) else {
                // The edited instance blew a budget the initial run fit
                // in; nothing sound to compare against.
                out.skipped = true;
                return out;
            };
            // The whole maintained instance (edb mirror + idb) and the
            // mirror alone: the second isolates edit-application bugs
            // from maintenance bugs.
            compare(
                &mut out,
                "from-scratch",
                leg,
                &scratch.instance,
                session.instance(),
            );
            compare(&mut out, "edited-edb", leg, &edb, session.edb());
        }
        if threads == 1 {
            final_answer = Some(session.answer());
        }
    }

    if let Some(answer) = final_answer {
        fault_leg(&mut out, &answer, fault);
    }
    out
}

/// Budgets for the scale campaign: the layered digraphs carry up to
/// 10^5 edb facts and reachability-shaped idbs of the same order, so
/// the fact ceiling is raised well clear of any honest run while still
/// catching a runaway fixpoint.
fn scale_opts(threads: usize) -> EvalOptions {
    EvalOptions::default()
        .with_max_stages(500)
        .with_max_facts(2_000_000)
        .with_threads(threads)
}

/// Scale differential: the morsel-parallel legs must be invisible at
/// 10^4–10^5-fact size — byte-identical model *and* stage count at
/// 2/4/8 worker threads against the sequential reference — and an
/// incremental session driven by a seeded edit script over the large
/// edb must agree with from-scratch evaluation after every poll.
///
/// This is the fuzzing face of the columnar/morsel tentpole: segment
/// freezing, `iter_since` delta cursors, and morsel partitioning all
/// get exercised at sizes the small-grammar campaigns never reach.
fn scale_campaign(program: &Program, input: &Instance, run_seed: u64, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    let Ok(reference) = stratified::eval(program, input, scale_opts(1)) else {
        out.skipped = true;
        return out;
    };
    let answer = reference.answer(program);

    for threads in [2usize, 4, 8] {
        out.oracle_runs += 1;
        match stratified::eval(program, input, scale_opts(threads)) {
            Ok(run) => {
                compare(
                    &mut out,
                    "stratified",
                    "morsel-parallel",
                    &answer,
                    &run.answer(program),
                );
                out.comparisons += 1;
                if run.stages != reference.stages {
                    out.diverge(
                        "stratified",
                        "morsel-parallel",
                        format!(
                            "stages {} at 1 thread vs {} at {threads}",
                            reference.stages, run.stages
                        ),
                    );
                }
            }
            Err(e) => out.diverge(
                "stratified",
                "morsel-parallel",
                format!("threads={threads} failed: {e}"),
            ),
        }
    }

    // Incremental pass: a short edit script against the large edb,
    // maintained at 4 threads, checked against from-scratch after
    // every poll. Retractions of long-standing facts force the
    // delete/rederive machinery through frozen columnar segments.
    let script = scale_edit_script(program, input, run_seed);
    if !script.is_empty() {
        out.oracle_runs += 1;
        match IncrementalSession::new(program.clone(), input, scale_opts(4)) {
            Ok(mut session) => {
                let mut edb = input.clone();
                'polls: for batch in &script {
                    for (insert, pred, tuple) in batch {
                        let queued = if *insert {
                            edb.insert_fact(*pred, tuple.clone());
                            session.insert(*pred, tuple.clone())
                        } else {
                            edb.retract_fact(*pred, tuple);
                            session.retract(*pred, tuple.clone())
                        };
                        if let Err(e) = queued {
                            out.diverge("from-scratch", "ivm-scale", format!("edit rejected: {e}"));
                            break 'polls;
                        }
                    }
                    out.oracle_runs += 1;
                    if let Err(e) = session.poll() {
                        out.diverge("from-scratch", "ivm-scale", format!("poll failed: {e}"));
                        break 'polls;
                    }
                    let Ok(scratch) = stratified::eval(program, &edb, scale_opts(1)) else {
                        break 'polls;
                    };
                    compare(
                        &mut out,
                        "from-scratch",
                        "ivm-scale",
                        &scratch.instance,
                        session.instance(),
                    );
                    compare(&mut out, "edited-edb", "ivm-scale", &edb, session.edb());
                }
            }
            Err(e) => out.diverge(
                "from-scratch",
                "ivm-scale",
                format!("session init failed: {e}"),
            ),
        }
    }

    fault_leg(&mut out, &answer, fault);
    out
}

/// Edit script over a scale instance: two batches of inserts and
/// retracts drawn from the instance's own active domain (the small
/// campaigns' hard-coded universe would never hit a 10^4-node graph).
fn scale_edit_script(program: &Program, input: &Instance, seed: u64) -> Vec<Vec<Edit>> {
    let Ok(schema) = program.schema() else {
        return Vec::new();
    };
    let mut preds: Vec<(Symbol, usize)> = program
        .edb()
        .into_iter()
        .filter_map(|p| schema.arity(p).map(|a| (p, a)))
        .collect();
    preds.sort_unstable_by_key(|&(p, _)| p);
    let adom = input.adom_sorted();
    if preds.is_empty() || adom.is_empty() {
        return Vec::new();
    }
    let mut rng = Rng::seeded(seed);
    let mut mirror = input.clone();
    let mut script = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut batch = Vec::new();
        for _ in 0..1 + rng.gen_index(3) {
            let (pred, arity) = preds[rng.gen_index(preds.len())];
            let existing: Vec<Tuple> = mirror
                .relation(pred)
                .map(|r| r.sorted().iter().cloned().collect())
                .unwrap_or_default();
            if !existing.is_empty() && rng.gen_bool(0.5) {
                let tuple = existing[rng.gen_index(existing.len())].clone();
                mirror.retract_fact(pred, &tuple);
                batch.push((false, pred, tuple));
            } else {
                let tuple: Tuple = (0..arity)
                    .map(|_| adom[rng.gen_index(adom.len())])
                    .collect();
                mirror.insert_fact(pred, tuple.clone());
                batch.push((true, pred, tuple));
            }
        }
        script.push(batch);
    }
    script
}

/// Planned-vs-unplanned: the cost-based join ordering must be a pure
/// optimization. The syntactic (most-bound-first) reference ordering
/// and the cost-based ordering must agree on the model *and* the stage
/// count, sequentially and at every thread count.
fn planner(program: &Program, input: &Instance, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    let syntactic = |threads| opts(threads).with_plan_mode(PlanMode::Syntactic);
    let costed = |threads| opts(threads).with_plan_mode(PlanMode::Cost);
    let Ok(reference) = stratified::eval(program, input, syntactic(1)) else {
        out.skipped = true;
        return out;
    };
    let answer = reference.answer(program);

    // Cost-planned leg, sequential: same model, same stage count.
    out.oracle_runs += 1;
    match stratified::eval(program, input, costed(1)) {
        Ok(run) => {
            compare(
                &mut out,
                "syntactic-plan",
                "cost-plan",
                &answer,
                &run.answer(program),
            );
            out.comparisons += 1;
            if run.stages != reference.stages {
                out.diverge(
                    "syntactic-plan",
                    "cost-plan",
                    format!("stages {} vs {}", reference.stages, run.stages),
                );
            }
        }
        Err(e) => out.diverge(
            "syntactic-plan",
            "cost-plan",
            format!("cost plan failed: {e}"),
        ),
    }

    // Cost-planned parallel legs: delta-first plans still partition the
    // per-round matches exactly, so the model stays byte-identical.
    for threads in [2usize, 4, 8] {
        out.oracle_runs += 1;
        match stratified::eval(program, input, costed(threads)) {
            Ok(run) => compare(
                &mut out,
                "syntactic-plan",
                "cost-plan-parallel",
                &answer,
                &run.answer(program),
            ),
            Err(e) => out.diverge(
                "syntactic-plan",
                "cost-plan-parallel",
                format!("threads={threads} failed: {e}"),
            ),
        }
    }

    // The syntactic ordering is itself thread-invariant.
    out.oracle_runs += 1;
    match stratified::eval(program, input, syntactic(4)) {
        Ok(run) => compare(
            &mut out,
            "syntactic-plan",
            "syntactic-plan-parallel",
            &answer,
            &run.answer(program),
        ),
        Err(e) => out.diverge(
            "syntactic-plan",
            "syntactic-plan-parallel",
            format!("threads=4 failed: {e}"),
        ),
    }

    fault_leg(&mut out, &answer, fault);
    out
}

fn positive(program: &Program, input: &Instance, interner: &mut Interner, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    let Ok(reference) = seminaive::minimum_model(program, input, opts(1)) else {
        out.skipped = true;
        return out;
    };
    let answer = reference.answer(program);

    // Naive fixpoint: same minimum model, stage counts may differ.
    out.oracle_runs += 1;
    match naive::minimum_model(program, input, opts(1)) {
        Ok(run) => compare(
            &mut out,
            "seminaive",
            "naive",
            &answer,
            &run.answer(program),
        ),
        Err(e) => out.diverge("seminaive", "naive", format!("naive failed: {e}")),
    }

    // Stratified evaluation degenerates to semi-naive on one stratum.
    out.oracle_runs += 1;
    match stratified::eval(program, input, opts(1)) {
        Ok(run) => compare(
            &mut out,
            "seminaive",
            "stratified",
            &answer,
            &run.answer(program),
        ),
        Err(e) => out.diverge("seminaive", "stratified", format!("stratified failed: {e}")),
    }

    // Parallel legs promise byte-identical answers *and* stage counts.
    for threads in [2usize, 4, 8] {
        out.oracle_runs += 1;
        match seminaive::minimum_model(program, input, opts(threads)) {
            Ok(run) => {
                compare(
                    &mut out,
                    "seminaive",
                    "seminaive-parallel",
                    &answer,
                    &run.answer(program),
                );
                out.comparisons += 1;
                if run.stages != reference.stages {
                    out.diverge(
                        "seminaive",
                        "seminaive-parallel",
                        format!(
                            "stages {} at 1 thread vs {} at {threads}",
                            reference.stages, run.stages
                        ),
                    );
                }
            }
            Err(e) => out.diverge(
                "seminaive",
                "seminaive-parallel",
                format!("threads={threads} failed: {e}"),
            ),
        }
    }

    // Magic rewriting on a single-binding query over the first idb
    // predicate: the rewritten program must report exactly the
    // reference tuples that match the binding.
    let idb = program.idb();
    let mut adom: Vec<Value> = input.adom_sorted();
    adom.extend(program.adom());
    adom.sort_unstable();
    adom.dedup();
    if let (Some(&query_pred), Some(&bind)) = (idb.first(), adom.first()) {
        if let Ok(schema) = program.schema() {
            let arity = schema.arity(query_pred).unwrap_or(0);
            let mut bindings = vec![None; arity];
            if arity > 0 {
                bindings[0] = Some(bind);
            }
            let query = magic::QueryPattern::new(query_pred, bindings.clone());
            out.oracle_runs += 1;
            match magic::answer(program, &query, input, interner, opts(1)) {
                Ok(rel) => {
                    let mut expected = Instance::new();
                    expected.ensure(query_pred, arity);
                    if let Some(full) = answer.relation(query_pred) {
                        for t in full.sorted().iter() {
                            let matches = bindings
                                .iter()
                                .zip(t.values())
                                .all(|(b, v)| b.is_none_or(|c| c == *v));
                            if matches {
                                expected.insert_fact(query_pred, t.clone());
                            }
                        }
                    }
                    let mut got = Instance::new();
                    got.ensure(query_pred, arity);
                    for t in rel.iter() {
                        got.insert_fact(query_pred, t.clone());
                    }
                    compare(&mut out, "seminaive", "magic", &expected, &got);
                }
                Err(e) => out.diverge("seminaive", "magic", format!("magic failed: {e}")),
            }
        }
    }

    // Independent reference: the fixpoint-language translation.
    while_leg(&mut out, program, input, &answer, "seminaive");

    // Metamorphic: positive programs are monotone in the edb.
    out.oracle_runs += 1;
    let sub = without_facts(input, |i| i % 3 == 0);
    match seminaive::minimum_model(program, &sub, opts(1)) {
        Ok(run) => {
            out.comparisons += 1;
            let sub_answer = run.answer(program);
            let missing = fact_list(&sub_answer)
                .into_iter()
                .find(|(sym, t)| !answer.contains_fact(*sym, t));
            if missing.is_some() {
                out.diverge(
                    "seminaive",
                    "monotonicity",
                    "shrinking the edb grew the answer".to_string(),
                );
            }
        }
        Err(e) => out.diverge("seminaive", "monotonicity", format!("sub-edb failed: {e}")),
    }

    rule_permutation_leg(&mut out, program, input, &answer, Campaign::Positive);
    fault_leg(&mut out, &answer, fault);
    out
}

fn negation(program: &Program, input: &Instance, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    let Ok(reference) = stratified::eval(program, input, opts(1)) else {
        out.skipped = true;
        return out;
    };
    let answer = reference.answer(program);

    for threads in [2usize, 4, 8] {
        out.oracle_runs += 1;
        match stratified::eval(program, input, opts(threads)) {
            Ok(run) => {
                compare(
                    &mut out,
                    "stratified",
                    "stratified-parallel",
                    &answer,
                    &run.answer(program),
                );
                out.comparisons += 1;
                if run.stages != reference.stages {
                    out.diverge(
                        "stratified",
                        "stratified-parallel",
                        format!(
                            "stages {} at 1 thread vs {} at {threads}",
                            reference.stages, run.stages
                        ),
                    );
                }
            }
            Err(e) => out.diverge(
                "stratified",
                "stratified-parallel",
                format!("threads={threads} failed: {e}"),
            ),
        }
    }

    // On stratifiable programs the well-founded model is total and
    // coincides with the stratified model (§3.3).
    out.oracle_runs += 1;
    match wellfounded::eval(program, input, opts(1)) {
        Ok(model) => {
            let idb = program.idb();
            compare(
                &mut out,
                "stratified",
                "wellfounded-true",
                &answer,
                &model.true_facts.project_schema(idb.iter().copied()),
            );
            compare(
                &mut out,
                "stratified",
                "wellfounded-possible",
                &answer,
                &model.possible_facts.project_schema(idb),
            );
        }
        Err(e) => out.diverge(
            "stratified",
            "wellfounded",
            format!("wellfounded failed: {e}"),
        ),
    }

    while_leg(&mut out, program, input, &answer, "stratified");
    rule_permutation_leg(&mut out, program, input, &answer, Campaign::Negation);
    fault_leg(&mut out, &answer, fault);
    out
}

fn invention_campaign(program: &Program, input: &Instance, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    out.oracle_runs += 1;
    let Ok(first) = invention::eval(program, input, opts(1)) else {
        out.skipped = true;
        return out;
    };
    let answer = first.answer(program);

    // Invention is deterministic: a second run reproduces the instance,
    // the stage count, and the invented-value budget exactly.
    out.oracle_runs += 1;
    match invention::eval(program, input, opts(1)) {
        Ok(second) => {
            compare(
                &mut out,
                "invention",
                "invention-rerun",
                &answer,
                &second.answer(program),
            );
            out.comparisons += 1;
            if (second.stages, second.invented) != (first.stages, first.invented) {
                out.diverge(
                    "invention",
                    "invention-rerun",
                    format!(
                        "stages/invented ({}, {}) vs ({}, {})",
                        first.stages, first.invented, second.stages, second.invented
                    ),
                );
            }
        }
        Err(e) => out.diverge("invention", "invention-rerun", format!("rerun failed: {e}")),
    }

    // Thread invariance of the shared semi-naive substrate.
    out.oracle_runs += 1;
    match invention::eval(program, input, opts(4)) {
        Ok(par) => compare(
            &mut out,
            "invention",
            "invention-parallel",
            &answer,
            &par.answer(program),
        ),
        Err(e) => out.diverge(
            "invention",
            "invention-parallel",
            format!("threads=4 failed: {e}"),
        ),
    }

    fault_leg(&mut out, &answer, fault);
    out
}

fn nondet(program: &Program, input: &Instance, run_seed: u64, fault: Fault) -> Outcome {
    let mut out = Outcome::default();
    let Ok(compiled) = NondetProgram::compile(program, false) else {
        out.skipped = true;
        return out;
    };
    out.oracle_runs += 1;
    let mut chooser = RandomChooser::seeded(run_seed);
    let Ok(first) = run_once(&compiled, input, &mut chooser, opts(1)) else {
        out.skipped = true;
        return out;
    };
    let idb = program.idb();
    let answer = first.instance.project_schema(idb.iter().copied());

    // Same seed, same run: the seeded chooser makes one computation
    // fully reproducible.
    out.oracle_runs += 1;
    let mut chooser = RandomChooser::seeded(run_seed);
    match run_once(&compiled, input, &mut chooser, opts(1)) {
        Ok(second) => {
            let mut replay = second.instance.project_schema(idb.iter().copied());
            if fault == Fault::DropMaxFact {
                replay = drop_max_fact(&replay);
            }
            compare(&mut out, "nondet", "nondet-replay", &answer, &replay);
            out.comparisons += 1;
            if second.steps != first.steps && fault == Fault::None {
                out.diverge(
                    "nondet",
                    "nondet-replay",
                    format!("steps {} vs {}", first.steps, second.steps),
                );
            }
        }
        Err(e) => out.diverge("nondet", "nondet-replay", format!("replay failed: {e}")),
    }

    // Effect-space containment: cert ⊆ every run ⊆ poss. Skipped (not
    // failed) when the state space exceeds the enumeration budget.
    out.oracle_runs += 1;
    if let Ok(pc) = poss_cert(&compiled, input, EffOptions { max_states: 2_000 }) {
        let poss = pc.poss.project_schema(idb.iter().copied());
        let cert = pc.cert.project_schema(idb.iter().copied());
        out.comparisons += 1;
        if let Some((sym, _)) = fact_list(&cert)
            .into_iter()
            .find(|(sym, t)| !poss.contains_fact(*sym, t))
        {
            out.diverge("poss", "cert", format!("cert fact outside poss: {sym:?}"));
        }
        out.comparisons += 1;
        if fact_list(&answer)
            .into_iter()
            .any(|(sym, t)| !poss.contains_fact(sym, &t))
        {
            out.diverge("poss", "nondet", "run derived a fact outside poss".into());
        }
        out.comparisons += 1;
        if fact_list(&cert)
            .into_iter()
            .any(|(sym, t)| !answer.contains_fact(sym, &t))
        {
            out.diverge("cert", "nondet", "run missed a certain fact".into());
        }
    }
    out
}

/// The while-translation leg shared by the deterministic campaigns.
fn while_leg(
    out: &mut Outcome,
    program: &Program,
    input: &Instance,
    answer: &Instance,
    reference: &'static str,
) {
    let Some(wp) = to_while(program) else {
        return;
    };
    out.oracle_runs += 1;
    match unchained_while::run(&wp, input, 100_000, None) {
        Ok(run) => compare(
            out,
            reference,
            "while-translation",
            answer,
            &run.instance.project_schema(program.idb()),
        ),
        Err(e) => out.diverge(reference, "while-translation", format!("while failed: {e}")),
    }
}

/// Rule-order (and hence stratum-discovery-order) invariance: the
/// reversed program must compute the same model.
fn rule_permutation_leg(
    out: &mut Outcome,
    program: &Program,
    input: &Instance,
    answer: &Instance,
    campaign: Campaign,
) {
    let mut reversed = program.clone();
    reversed.rules.reverse();
    out.oracle_runs += 1;
    let run = match campaign {
        Campaign::Positive => seminaive::minimum_model(&reversed, input, opts(1)),
        _ => stratified::eval(&reversed, input, opts(1)),
    };
    match run {
        Ok(run) => compare(
            out,
            "original-order",
            "reversed-order",
            answer,
            &run.answer(&reversed),
        ),
        Err(e) => out.diverge("original-order", "reversed-order", format!("failed: {e}")),
    }
}

/// The injected-fault leg: an extra matrix entry that is the reference
/// answer minus its largest fact.
fn fault_leg(out: &mut Outcome, answer: &Instance, fault: Fault) {
    if fault == Fault::DropMaxFact {
        out.oracle_runs += 1;
        let faulty = drop_max_fact(answer);
        compare(out, "reference", "injected-fault", answer, &faulty);
    }
}

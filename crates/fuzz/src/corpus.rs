//! The repro corpus: minimal diverging programs checked in under
//! `tests/corpus/` and replayed forever by `tests/corpus_replay.rs`.
//!
//! Each repro is a pair of files sharing a stem: `<stem>.dl` holds the
//! shrunk program behind `%` header comments recording the campaign and
//! the divergence it witnessed; `<stem>.facts` holds the edb instance
//! as ground facts, one per line, parseable by
//! [`unchained_parser::parse_facts`]. Both files are deterministic in
//! the campaign seed, so re-running a campaign reproduces the corpus
//! byte for byte.

use std::io;
use std::path::{Path, PathBuf};

use unchained_common::{Instance, Interner};
use unchained_parser::{parse_facts, parse_program, Program};

use crate::grammar::Campaign;
use crate::oracle::fact_list;

/// Renders an instance as a fact file: `Pred(v1, v2).` lines, sorted.
pub fn facts_text(instance: &Instance, interner: &Interner) -> String {
    let mut lines: Vec<String> = fact_list(instance)
        .into_iter()
        .map(|(sym, tuple)| {
            if tuple.values().is_empty() {
                format!("{}.", interner.name(sym))
            } else {
                format!("{}{}.", interner.name(sym), tuple.display(interner))
            }
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

/// A repro ready to be written (or just inspected by tests).
#[derive(Clone, Debug)]
pub struct Repro {
    /// File stem, e.g. `positive-s42-p17`.
    pub stem: String,
    /// The minimal diverging program.
    pub program: Program,
    /// The minimal diverging instance.
    pub instance: Instance,
    /// Header comment lines (without the `%` prefix).
    pub header: Vec<String>,
}

impl Repro {
    /// The `.dl` file contents: header comments then the program.
    pub fn program_text(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for line in &self.header {
            out.push_str("% ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&self.program.display(interner).to_string());
        out
    }

    /// Writes `<stem>.dl` and `<stem>.facts` into `dir`.
    pub fn write(&self, dir: &Path, interner: &Interner) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let dl = dir.join(format!("{}.dl", self.stem));
        let facts = dir.join(format!("{}.facts", self.stem));
        std::fs::write(&dl, self.program_text(interner))?;
        let mut text = format!("% facts for {}\n", self.stem);
        let body = facts_text(&self.instance, interner);
        if !body.is_empty() {
            text.push_str(&body);
            text.push('\n');
        }
        std::fs::write(&facts, text)?;
        Ok((dl, facts))
    }
}

/// A corpus entry loaded back from disk.
#[derive(Debug)]
pub struct LoadedRepro {
    /// File stem.
    pub stem: String,
    /// The parsed program.
    pub program: Program,
    /// The parsed instance (empty if no `.facts` sibling exists).
    pub instance: Instance,
    /// Campaign recorded in the header, if any.
    pub campaign: Option<Campaign>,
}

/// Loads a `.dl` corpus file plus its optional `.facts` sibling.
pub fn load(dl_path: &Path, interner: &mut Interner) -> Result<LoadedRepro, String> {
    let stem = dl_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default()
        .to_string();
    let src =
        std::fs::read_to_string(dl_path).map_err(|e| format!("{}: {e}", dl_path.display()))?;
    let campaign = src.lines().find_map(|line| {
        let rest = line.trim().strip_prefix('%')?.trim();
        let value = rest.strip_prefix("campaign:")?.trim();
        Campaign::parse(value)
    });
    let program =
        parse_program(&src, interner).map_err(|e| format!("{}: {e}", dl_path.display()))?;
    let facts_path = dl_path.with_extension("facts");
    let instance = if facts_path.exists() {
        let text = std::fs::read_to_string(&facts_path)
            .map_err(|e| format!("{}: {e}", facts_path.display()))?;
        parse_facts(&text, interner).map_err(|e| format!("{}: {e}", facts_path.display()))?
    } else {
        Instance::new()
    };
    Ok(LoadedRepro {
        stem,
        program,
        instance,
        campaign,
    })
}

/// All `.dl` files in `dir`, sorted by name for deterministic replay.
pub fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "dl"))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Tuple, Value};

    #[test]
    fn write_then_load_round_trips() {
        let mut interner = Interner::new();
        let program = parse_program(
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).",
            &mut interner,
        )
        .unwrap();
        let g = interner.get("G").unwrap();
        let mut instance = Instance::new();
        instance.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        instance.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));

        let dir = std::env::temp_dir().join("unchained-fuzz-corpus-test");
        let repro = Repro {
            stem: "positive-s0-p0".into(),
            program: program.clone(),
            instance: instance.clone(),
            header: vec!["campaign: positive".into(), "divergence: a vs b".into()],
        };
        let (dl, _) = repro.write(&dir, &interner).unwrap();

        let mut interner2 = Interner::new();
        let loaded = load(&dl, &mut interner2).unwrap();
        assert_eq!(loaded.campaign, Some(Campaign::Positive));
        assert_eq!(loaded.program.rules.len(), 2);
        assert_eq!(loaded.instance.fact_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Standalone fuzzing binary: `cargo run --release -p unchained-fuzz`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(unchained_fuzz::main_with_args(&argv))
}

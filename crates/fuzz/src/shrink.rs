//! Delta-debugging shrinker: walk a divergence down to a minimal repro.
//!
//! Greedy ddmin over three nested granularities — drop whole rules,
//! then body literals, then edb tuples — revalidating campaign safety
//! (range restriction, stratifiability, positive binding) and
//! re-running the oracle after every candidate edit, looping until a
//! full pass makes no progress. Rules are renormalized after literal
//! drops so the final repro still satisfies `parse(print(p)) == p` and
//! can be written to the corpus verbatim.

use unchained_common::{Instance, Interner};
use unchained_parser::{check_positively_bound, check_range_restricted, DependencyGraph, Program};

use crate::grammar::Campaign;
use crate::oracle::{self, Fault};

/// A minimized repro plus the work it took.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal diverging program (normalized).
    pub program: Program,
    /// The minimal diverging edb instance.
    pub instance: Instance,
    /// Candidate oracle evaluations performed.
    pub steps: usize,
}

/// True iff `program` is still a well-formed member of the campaign's
/// fragment — candidates that break safety are rejected, never tested.
fn valid(campaign: Campaign, program: &Program) -> bool {
    if program.rules.is_empty() || program.schema().is_err() {
        return false;
    }
    if check_range_restricted(program, campaign == Campaign::Invention).is_err() {
        return false;
    }
    match campaign {
        Campaign::Negation | Campaign::Planner | Campaign::EditScript | Campaign::Scale => {
            DependencyGraph::build(program).stratify().is_ok()
        }
        Campaign::Nondet => check_positively_bound(program, false).is_ok(),
        Campaign::Positive | Campaign::Invention => true,
    }
}

/// Minimizes `(program, instance)` while the oracle keeps diverging.
/// `max_steps` bounds the total number of candidate evaluations.
pub fn shrink(
    campaign: Campaign,
    program: &Program,
    instance: &Instance,
    interner: &mut Interner,
    run_seed: u64,
    fault: Fault,
    max_steps: usize,
) -> ShrinkOutcome {
    let mut program = program.normalized();
    let mut instance = instance.clone();
    let mut steps = 0usize;

    let diverges = |p: &Program, i: &Instance, interner: &mut Interner| {
        oracle::check(campaign, p, i, interner, run_seed, fault)
            .divergence
            .is_some()
    };

    loop {
        let mut progressed = false;

        // Phase 1: drop whole rules.
        let mut idx = 0;
        while idx < program.rules.len() && program.rules.len() > 1 && steps < max_steps {
            let mut candidate = program.clone();
            candidate.rules.remove(idx);
            steps += 1;
            if valid(campaign, &candidate) && diverges(&candidate, &instance, interner) {
                program = candidate;
                progressed = true;
            } else {
                idx += 1;
            }
        }

        // Phase 2: drop body literals, renormalizing the edited rule.
        for ri in 0..program.rules.len() {
            let mut li = 0;
            while li < program.rules[ri].body.len() && steps < max_steps {
                let mut candidate = program.clone();
                candidate.rules[ri].body.remove(li);
                candidate.rules[ri] = candidate.rules[ri].normalized();
                steps += 1;
                if valid(campaign, &candidate) && diverges(&candidate, &instance, interner) {
                    program = candidate;
                    progressed = true;
                } else {
                    li += 1;
                }
            }
        }

        // Phase 3: drop edb tuples.
        let mut fi = 0;
        while fi < oracle::fact_list(&instance).len() && steps < max_steps {
            let candidate = oracle::without_facts(&instance, |i| i == fi);
            steps += 1;
            if diverges(&program, &candidate, interner) {
                instance = candidate;
                progressed = true;
            } else {
                fi += 1;
            }
        }

        if !progressed || steps >= max_steps {
            break;
        }
    }

    ShrinkOutcome {
        program: program.normalized(),
        instance,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GrammarConfig};

    /// With the drop-max-fact fault injected, any generated program
    /// that derives a fact diverges — and the shrinker must walk it
    /// down to a tiny, still-diverging, still-round-trippable repro.
    #[test]
    fn injected_fault_shrinks_to_three_rules_or_fewer() {
        let mut found = 0;
        for seed in 0..20u64 {
            let mut interner = Interner::new();
            let (p, inst) = generate(
                &mut interner,
                Campaign::Positive,
                GrammarConfig::default(),
                seed,
            );
            let outcome = oracle::check(
                Campaign::Positive,
                &p,
                &inst,
                &mut interner,
                seed,
                Fault::DropMaxFact,
            );
            if outcome.divergence.is_none() {
                continue; // empty answer: the fault has nothing to drop
            }
            found += 1;
            let shrunk = shrink(
                Campaign::Positive,
                &p,
                &inst,
                &mut interner,
                seed,
                Fault::DropMaxFact,
                5_000,
            );
            assert!(shrunk.program.rules.len() <= 3, "seed {seed}");
            assert!(valid(Campaign::Positive, &shrunk.program), "seed {seed}");
            // Still diverges, and still parses back to itself.
            let again = oracle::check(
                Campaign::Positive,
                &shrunk.program,
                &shrunk.instance,
                &mut interner,
                seed,
                Fault::DropMaxFact,
            );
            assert!(again.divergence.is_some(), "seed {seed}");
            let text = shrunk.program.display(&interner).to_string();
            let reparsed = unchained_parser::parse_program(&text, &mut interner).unwrap();
            assert_eq!(reparsed, shrunk.program, "seed {seed}:\n{text}");
        }
        assert!(
            found >= 5,
            "only {found} diverging seeds — fault leg inert?"
        );
    }
}

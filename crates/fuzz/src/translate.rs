//! Datalog(¬) → *fixpoint* (while-language) translation.
//!
//! The constructive side of Theorem 4.2: a stratified Datalog¬ program
//! becomes one `while change do` loop per stratum, whose body
//! cumulatively assigns each idb predicate of that stratum the FO
//! comprehension of its rules,
//!
//! ```text
//! P += { ō | ⋁_rules ∃ x̄ ( ⋀_j ō_j = head_j ∧ ⋀ body literals ) }
//! ```
//!
//! The while interpreter evaluates over `adom(input) ∪ constants(P)` —
//! exactly the engines' active domain — so the fixpoint program is an
//! *independent* implementation of the same query, sharing none of the
//! rule-planning/join machinery the engine family is built on. That
//! makes it the fuzzer's reference oracle: a bug in the planner
//! (`core::planner`) or executor (`core::exec`) has no counterpart
//! here.

use unchained_common::Symbol;
use unchained_fo::{FoTerm, FoVar, Formula};
use unchained_parser::{DependencyGraph, HeadLiteral, Literal, Program, Rule, Term};
use unchained_while::{Assignment, LoopCondition, Stmt, WhileProgram};

/// Translates a stratified Datalog¬ program into an equivalent
/// fixpoint-language program. Returns `None` for programs outside the
/// translatable fragment: multi-literal or negative heads, `forall`,
/// `choice`, value invention, or unstratifiable negation.
pub fn to_while(program: &Program) -> Option<WhileProgram> {
    for rule in &program.rules {
        if rule.head.len() != 1 || !rule.forall.is_empty() || !rule.invented_vars().is_empty() {
            return None;
        }
        if !matches!(rule.head[0], HeadLiteral::Pos(_)) {
            return None;
        }
        if rule.body.iter().any(|l| matches!(l, Literal::Choice(..))) {
            return None;
        }
    }
    let strat = DependencyGraph::build(program).stratify().ok()?;
    let schema = program.schema().ok()?;
    let partition = strat.partition_rules(program);

    let mut stmts = Vec::new();
    for stratum_rules in partition {
        if stratum_rules.is_empty() {
            continue;
        }
        // Group the stratum's rules by head predicate, in symbol order
        // for determinism.
        let mut preds: Vec<Symbol> = stratum_rules
            .iter()
            .filter_map(|r| r.head[0].atom())
            .map(|a| a.pred)
            .collect();
        preds.sort_unstable();
        preds.dedup();

        let mut body = Vec::new();
        for pred in preds {
            let arity = schema.arity(pred)?;
            let out: Vec<FoVar> = (0..arity).map(|i| FoVar(i as u32)).collect();
            let branches: Vec<Formula> = stratum_rules
                .iter()
                .filter(|r| r.head[0].atom().map(|a| a.pred) == Some(pred))
                .map(|r| rule_branch(r, &out))
                .collect();
            body.push(Stmt::Assign {
                target: pred,
                vars: out,
                formula: Formula::Or(branches),
                mode: Assignment::Cumulate,
            });
        }
        stmts.push(Stmt::While {
            condition: LoopCondition::Change,
            body,
        });
    }
    Some(WhileProgram::new(stmts))
}

/// One rule as a disjunct: `∃ x̄ (ō = head ∧ body)`, with the rule's
/// variables shifted past the output variables.
fn rule_branch(rule: &Rule, out: &[FoVar]) -> Formula {
    let shift = out.len() as u32;
    let fo = |t: &Term| match t {
        Term::Var(v) => FoTerm::Var(FoVar(v.0 + shift)),
        Term::Const(c) => FoTerm::Const(*c),
    };
    let head = rule.head[0].atom().expect("checked positive head");
    let mut conjuncts: Vec<Formula> = head
        .args
        .iter()
        .zip(out)
        .map(|(arg, o)| Formula::Eq(FoTerm::Var(*o), fo(arg)))
        .collect();
    for lit in &rule.body {
        conjuncts.push(match lit {
            Literal::Pos(a) => Formula::Atom(a.pred, a.args.iter().map(fo).collect()),
            Literal::Neg(a) => Formula::Atom(a.pred, a.args.iter().map(fo).collect()).not(),
            Literal::Eq(s, t) => Formula::Eq(fo(s), fo(t)),
            Literal::Neq(s, t) => Formula::Eq(fo(s), fo(t)).not(),
            Literal::Choice(..) => unreachable!("checked above"),
        });
    }
    let bound: Vec<FoVar> = (0..rule.var_count() as u32)
        .map(|i| FoVar(i + shift))
        .collect();
    Formula::exists(bound, Formula::And(conjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Instance, Interner, Tuple, Value};
    use unchained_core::{seminaive, stratified, EvalOptions};
    use unchained_parser::parse_program;

    fn chain(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        inst.ensure(g, 2);
        for k in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    #[test]
    fn tc_translation_matches_seminaive() {
        let mut i = Interner::new();
        let p = parse_program("T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).", &mut i).unwrap();
        let input = chain(&mut i, 5);
        let engine = seminaive::minimum_model(&p, &input, EvalOptions::default())
            .unwrap()
            .answer(&p);
        let wp = to_while(&p).unwrap();
        assert!(wp.is_fixpoint());
        let run = unchained_while::run(&wp, &input, 10_000, None).unwrap();
        assert!(run.instance.project_schema(p.idb()).same_facts(&engine));
    }

    #[test]
    fn stratified_negation_translation_matches() {
        let mut i = Interner::new();
        // Complement-of-TC needs a vertex relation for range restriction.
        let p = parse_program(
            "T(x, y) :- G(x, y).\n\
             T(x, y) :- G(x, z), T(z, y).\n\
             V(x) :- G(x, y).\n\
             V(y) :- G(x, y).\n\
             CT(x, y) :- V(x), V(y), !T(x, y).",
            &mut i,
        )
        .unwrap();
        let input = chain(&mut i, 4);
        let engine = stratified::eval(&p, &input, EvalOptions::default())
            .unwrap()
            .answer(&p);
        let wp = to_while(&p).unwrap();
        let run = unchained_while::run(&wp, &input, 10_000, None).unwrap();
        assert!(run.instance.project_schema(p.idb()).same_facts(&engine));
    }

    #[test]
    fn untranslatable_fragments_are_rejected() {
        let mut i = Interner::new();
        let invention = parse_program("P(x, n) :- E(x).", &mut i).unwrap();
        assert!(to_while(&invention).is_none());
        let choice = parse_program("P(x) :- E(x, y), choice((x), (y)).", &mut i).unwrap();
        assert!(to_while(&choice).is_none());
        let unstratifiable = parse_program("P(x) :- E(x), !P(x).", &mut i).unwrap();
        assert!(to_while(&unstratifiable).is_none());
    }
}

//! The `FUZZ.json` campaign summary — the fuzzing counterpart of
//! `BENCH.json`, and deliberately free of wall-clock fields so two runs
//! of the same campaign produce byte-identical reports.

use unchained_common::{telemetry::json_escape, Json};

/// Format version of `FUZZ.json`.
pub const FUZZ_SCHEMA_VERSION: u64 = 1;

/// Everything one campaign run counted. All fields are deterministic
/// in (campaign, seed, budget, fault) — no timestamps, no durations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Campaign name (`positive`, `negation`, `invention`, `nondet`).
    pub campaign: String,
    /// Master seed.
    pub seed: u64,
    /// Requested number of programs.
    pub budget: usize,
    /// Programs actually generated (== budget).
    pub programs: usize,
    /// Programs the reference engine could not evaluate (budgets).
    pub skipped: usize,
    /// Engine invocations across all oracle legs.
    pub oracle_runs: usize,
    /// Pairwise comparisons and metamorphic property checks.
    pub comparisons: usize,
    /// Programs on which some oracle leg disagreed.
    pub divergences: usize,
    /// Candidate evaluations spent shrinking divergences.
    pub shrink_steps: usize,
    /// Whether the deliberate fault leg was enabled.
    pub fault_injected: bool,
    /// Corpus stems written for shrunk repros.
    pub repros: Vec<String>,
}

impl FuzzReport {
    /// Serializes to the versioned JSON format.
    pub fn to_json(&self) -> String {
        let repros: Vec<String> = self
            .repros
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        format!(
            concat!(
                "{{\"schema_version\":{},\"campaign\":\"{}\",\"seed\":{},",
                "\"budget\":{},\"programs\":{},\"skipped\":{},",
                "\"oracle_runs\":{},\"comparisons\":{},\"divergences\":{},",
                "\"shrink_steps\":{},\"fault_injected\":{},\"repros\":[{}]}}\n"
            ),
            FUZZ_SCHEMA_VERSION,
            json_escape(&self.campaign),
            self.seed,
            self.budget,
            self.programs,
            self.skipped,
            self.oracle_runs,
            self.comparisons,
            self.divergences,
            self.shrink_steps,
            self.fault_injected,
            repros.join(",")
        )
    }

    /// Parses a report back (tests and tooling).
    pub fn from_json(src: &str) -> Result<FuzzReport, String> {
        let json = Json::parse(src).map_err(|e| e.to_string())?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != FUZZ_SCHEMA_VERSION {
            return Err(format!("unsupported FUZZ.json schema version {version}"));
        }
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {name}"))
        };
        Ok(FuzzReport {
            campaign: json
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("missing campaign")?
                .to_string(),
            seed: field("seed")?,
            budget: field("budget")? as usize,
            programs: field("programs")? as usize,
            skipped: field("skipped")? as usize,
            oracle_runs: field("oracle_runs")? as usize,
            comparisons: field("comparisons")? as usize,
            divergences: field("divergences")? as usize,
            shrink_steps: field("shrink_steps")? as usize,
            fault_injected: json
                .get("fault_injected")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            repros: json
                .get("repros")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|j| j.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// The human summary printed after a campaign.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "fuzz: campaign={} seed={} budget={}\n\
             \x20 programs={} skipped={} oracle_runs={} comparisons={}\n\
             \x20 divergences={} shrink_steps={}\n",
            self.campaign,
            self.seed,
            self.budget,
            self.programs,
            self.skipped,
            self.oracle_runs,
            self.comparisons,
            self.divergences,
            self.shrink_steps,
        );
        for stem in &self.repros {
            out.push_str(&format!("  repro: {stem}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let report = FuzzReport {
            campaign: "positive".into(),
            seed: 42,
            budget: 200,
            programs: 200,
            skipped: 1,
            oracle_runs: 1800,
            comparisons: 2400,
            divergences: 2,
            shrink_steps: 91,
            fault_injected: true,
            repros: vec!["positive-s42-p7".into(), "positive-s42-p13".into()],
        };
        let json = report.to_json();
        assert_eq!(FuzzReport::from_json(&json).unwrap(), report);
    }

    #[test]
    fn report_json_has_no_wall_clock_fields() {
        let json = FuzzReport::default().to_json();
        for banned in ["nanos", "millis", "time", "date"] {
            assert!(!json.contains(banned), "{banned} leaked into FUZZ.json");
        }
    }
}

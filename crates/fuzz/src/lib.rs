//! # unchained-fuzz
//!
//! Deterministic differential fuzzing for the engine family. The
//! paper's "evaluation" is semantic equivalence — every forward-chaining
//! variant must agree with its declarative counterpart — so the fuzzer
//! generates random safe programs per fragment ([`grammar`]), runs them
//! through every applicable engine plus an independent while-language
//! translation ([`oracle`], [`translate`]), and on any disagreement
//! delta-debugs the witness down to a minimal repro ([`shrink`]) checked
//! into the corpus ([`corpus`]) that `cargo test` replays forever after.
//!
//! Zero dependencies, fully offline, and **bit-for-bit deterministic**:
//! the same `(campaign, seed, budget)` triple produces the same
//! programs, the same oracle verdicts, the same `FUZZ.json`
//! ([`report`]) and the same corpus files on every run and machine.
//! Reachable two ways:
//!
//! ```sh
//! cargo run --release -p unchained-fuzz -- --seed 42 --budget 200
//! cargo run --release -p unchained-cli -- fuzz --seed 42 --budget 200
//! ```

pub mod corpus;
pub mod grammar;
pub mod oracle;
pub mod report;
pub mod shrink;
pub mod translate;

pub use corpus::Repro;
pub use grammar::{Campaign, GrammarConfig};
pub use oracle::{Divergence, Fault, Outcome};
pub use report::{FuzzReport, FUZZ_SCHEMA_VERSION};
pub use shrink::ShrinkOutcome;
pub use translate::to_while;

use std::path::PathBuf;
use unchained_common::{Interner, Rng};

/// One campaign's configuration, as assembled from the command line.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Which fragment/matrix to run.
    pub campaign: Campaign,
    /// Master seed; every program seed derives from it.
    pub seed: u64,
    /// Number of programs to generate.
    pub budget: usize,
    /// Deliberate fault injection (shrinker self-test).
    pub fault: Fault,
    /// Where to write shrunk repros (`None`: keep them in memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Candidate-evaluation bound per shrink.
    pub max_shrink_steps: usize,
    /// Program/instance size knobs.
    pub grammar: GrammarConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            campaign: Campaign::Positive,
            seed: 0,
            budget: 100,
            fault: Fault::None,
            corpus_dir: None,
            max_shrink_steps: 5_000,
            grammar: GrammarConfig::default(),
        }
    }
}

/// Runs one campaign: generate → oracle → (shrink → corpus) per
/// program. Returns the report plus every shrunk repro (already written
/// to `corpus_dir` when one is configured).
pub fn run_campaign(options: &FuzzOptions) -> Result<(FuzzReport, Vec<Repro>), String> {
    let mut report = FuzzReport {
        campaign: options.campaign.name().to_string(),
        seed: options.seed,
        budget: options.budget,
        fault_injected: options.fault != Fault::None,
        ..FuzzReport::default()
    };
    let mut repros = Vec::new();
    let mut master = Rng::seeded(options.seed);

    for index in 0..options.budget {
        let program_seed = master.next_u64();
        let run_seed = master.next_u64();
        // A fresh interner per program keeps symbol tables (and the
        // magic rewrite's adorned names) from cross-contaminating runs.
        let mut interner = Interner::new();
        let (program, instance) = grammar::generate(
            &mut interner,
            options.campaign,
            options.grammar,
            program_seed,
        );
        report.programs += 1;

        let outcome = oracle::check(
            options.campaign,
            &program,
            &instance,
            &mut interner,
            run_seed,
            options.fault,
        );
        report.oracle_runs += outcome.oracle_runs;
        report.comparisons += outcome.comparisons;
        if outcome.skipped {
            report.skipped += 1;
            continue;
        }
        let Some(divergence) = outcome.divergence else {
            continue;
        };
        report.divergences += 1;

        let shrunk = shrink::shrink(
            options.campaign,
            &program,
            &instance,
            &mut interner,
            run_seed,
            options.fault,
            options.max_shrink_steps,
        );
        report.shrink_steps += shrunk.steps;
        let stem = format!("{}-s{}-p{index}", options.campaign.name(), options.seed);
        let repro = Repro {
            stem: stem.clone(),
            program: shrunk.program,
            instance: shrunk.instance,
            header: vec![
                format!(
                    "fuzz repro: campaign={} seed={} program={index}",
                    options.campaign.name(),
                    options.seed
                ),
                format!(
                    "divergence: {} vs {} ({})",
                    divergence.left, divergence.right, divergence.detail
                ),
                format!("shrunk in {} candidate evaluations", shrunk.steps),
                "replayed by tests/corpus_replay.rs".to_string(),
            ],
        };
        if let Some(dir) = &options.corpus_dir {
            repro
                .write(dir, &interner)
                .map_err(|e| format!("cannot write repro {stem}: {e}"))?;
        }
        report.repros.push(stem);
        repros.push(repro);
    }
    Ok((report, repros))
}

/// Usage text for `unchained fuzz` / `cargo run -p unchained-fuzz`.
pub const FUZZ_USAGE: &str = "\
unchained fuzz — deterministic differential fuzzing of the engine family

USAGE:
  unchained fuzz [options]

OPTIONS:
  --campaign <C>     positive (default) | negation | invention | nondet |
                     planner | edits (incremental-session edit scripts) |
                     scale (10^4–10^5-fact digraphs, morsel-parallel + ivm)
  --seed <N>         master seed (default 0); same seed, same run, bit for bit
  --budget <N>       programs to generate (default 100)
  --json <PATH>      write the campaign summary (default FUZZ.json)
  --corpus <DIR>     where shrunk repros land (default tests/corpus)
  --inject-fault     add a deliberately wrong oracle leg (shrinker self-test)
  --max-shrink <N>   candidate evaluations per shrink (default 5000)
  --help             this text

EXIT STATUS:
  0  no divergence    1  divergences found    2  usage error
";

struct CliArgs {
    options: FuzzOptions,
    json: Option<String>,
    help: bool,
}

fn parse_cli(argv: &[String]) -> Result<CliArgs, String> {
    let mut args = CliArgs {
        options: FuzzOptions {
            corpus_dir: Some(PathBuf::from("tests/corpus")),
            ..FuzzOptions::default()
        },
        json: Some("FUZZ.json".to_string()),
        help: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => args.help = true,
            "--campaign" | "-c" => {
                let v = it.next().ok_or("--campaign needs a value")?;
                args.options.campaign =
                    Campaign::parse(v).ok_or_else(|| format!("unknown campaign `{v}`"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.options.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                args.options.budget = v.parse().map_err(|_| format!("bad --budget `{v}`"))?;
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?.clone());
            }
            "--corpus" => {
                args.options.corpus_dir =
                    Some(PathBuf::from(it.next().ok_or("--corpus needs a path")?));
            }
            "--inject-fault" => args.options.fault = Fault::DropMaxFact,
            "--max-shrink" => {
                let v = it.next().ok_or("--max-shrink needs a value")?;
                args.options.max_shrink_steps =
                    v.parse().map_err(|_| format!("bad --max-shrink `{v}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// CLI entry point shared by the standalone binary and `unchained fuzz`.
pub fn main_with_args(argv: &[String]) -> u8 {
    let args = match parse_cli(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{FUZZ_USAGE}");
            return 2;
        }
    };
    if args.help {
        print!("{FUZZ_USAGE}");
        return 0;
    }
    let (report, _) = match run_campaign(&args.options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    print!("{}", report.render_summary());
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return 2;
        }
    }
    u8::from(report.divergences > 0)
}

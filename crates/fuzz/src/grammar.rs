//! Grammar-based program and instance generation, one campaign per
//! language fragment.
//!
//! Every generated program is **safe by construction** for its
//! campaign's engine matrix: range-restricted, stratifiable where the
//! matrix requires it, positively bound for the nondeterministic
//! engines, and free of invention feedback loops (invented-value heads
//! never reappear in bodies, so Datalog¬new evaluation terminates).
//! Programs come out [normalized](unchained_parser::Program::normalized),
//! so `parse(print(p)) == p` holds for each — the shrinker and the
//! corpus writer depend on that round trip.
//!
//! Generation is fully deterministic in the seed; no wall clock, no
//! global state.

use unchained_common::{Instance, Interner, Rng, Tuple, Value};
use unchained_parser::{Atom, HeadLiteral, Literal, Program, Rule, Term, Var};

/// A fuzzing campaign: which language fragment to generate and which
/// oracle matrix to run (see [`crate::oracle`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Campaign {
    /// Pure positive Datalog — the widest matrix: naive, semi-naive,
    /// stratified, magic, parallel, while-translation, monotonicity.
    Positive,
    /// Stratified Datalog¬ (negation layered by construction):
    /// stratified sequential/parallel, well-founded, while-translation.
    Negation,
    /// Datalog¬new with non-recursive invention: determinism and
    /// thread-invariance of the invention engine.
    Invention,
    /// N-Datalog with `choice`: seeded-run determinism and poss/cert
    /// containment.
    Nondet,
    /// Planned-vs-unplanned: stratified Datalog¬ over deliberately
    /// skewed edb cardinalities, comparing the cost-based join ordering
    /// against the syntactic (most-bound-first) reference ordering,
    /// sequentially and in parallel.
    Planner,
    /// Incremental maintenance: stratified Datalog¬ driven through a
    /// seeded script of edb insert/retract batches, comparing the
    /// [`unchained_core::IncrementalSession`]'s maintained model after
    /// every poll against a from-scratch evaluation of the edited edb,
    /// at one and at four worker threads.
    EditScript,
    /// Columnar storage and morsel scheduling at size: layered
    /// pseudo-random digraphs with 10^4–10^5 edges (seed-scaled from
    /// [`GrammarConfig::scale_edges`]) under a pinned pool of
    /// reachability-shaped stratified programs, differentially run
    /// sequentially vs morsel-parallel at 2/4/8 threads plus an
    /// edit-script incremental pass.
    Scale,
}

impl Campaign {
    /// Parses a campaign name as spelled on the CLI.
    pub fn parse(name: &str) -> Option<Campaign> {
        Some(match name {
            "positive" | "datalog" => Campaign::Positive,
            "negation" | "stratified" => Campaign::Negation,
            "invention" | "datalog-new" => Campaign::Invention,
            "nondet" => Campaign::Nondet,
            "planner" | "plan" => Campaign::Planner,
            "edits" | "edit-script" | "ivm" => Campaign::EditScript,
            "scale" | "columnar" => Campaign::Scale,
            _ => return None,
        })
    }

    /// The canonical name (used in FUZZ.json and corpus file names).
    pub fn name(self) -> &'static str {
        match self {
            Campaign::Positive => "positive",
            Campaign::Negation => "negation",
            Campaign::Invention => "invention",
            Campaign::Nondet => "nondet",
            Campaign::Planner => "planner",
            Campaign::EditScript => "edits",
            Campaign::Scale => "scale",
        }
    }

    /// All campaigns, in documentation order.
    pub fn all() -> [Campaign; 7] {
        [
            Campaign::Positive,
            Campaign::Negation,
            Campaign::Invention,
            Campaign::Nondet,
            Campaign::Planner,
            Campaign::EditScript,
            Campaign::Scale,
        ]
    }
}

/// Size knobs for one generated (program, instance) pair. The defaults
/// keep every oracle run well under a millisecond so a 200-program
/// smoke budget stays interactive.
#[derive(Clone, Copy, Debug)]
pub struct GrammarConfig {
    /// Maximum rules per program (actual count varies 1..=max by seed).
    pub max_rules: usize,
    /// Number of idb predicates (`I0`, `I1`, …; arities 1–2).
    pub idb_preds: usize,
    /// Number of edb predicates (`E0`, `E1`, …; arities 1–2).
    pub edb_preds: usize,
    /// Maximum body literals per rule (before safety patching).
    pub max_body: usize,
    /// Domain values are `Int(0..universe)`.
    pub universe: i64,
    /// Facts generated per edb predicate (duplicates collapse).
    pub facts_per_pred: usize,
    /// Base edge count for the [`Campaign::Scale`] digraphs. Per-seed
    /// sizes land in `base..=3*base`, with roughly one program in ten
    /// at `10*base` — the default 10 000 yields the advertised
    /// 10^4–10^5 range. Tests shrink this to stay interactive in
    /// debug builds.
    pub scale_edges: usize,
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig {
            max_rules: 5,
            idb_preds: 3,
            edb_preds: 2,
            max_body: 3,
            universe: 4,
            facts_per_pred: 5,
            scale_edges: 10_000,
        }
    }
}

fn arity_of(index: usize) -> usize {
    1 + index % 2
}

const VAR_NAMES: [&str; 6] = ["x", "y", "z", "w", "u", "v"];

/// Generates one safe program plus a matching edb instance,
/// deterministically in `seed`.
pub fn generate(
    interner: &mut Interner,
    campaign: Campaign,
    cfg: GrammarConfig,
    seed: u64,
) -> (Program, Instance) {
    if campaign == Campaign::Scale {
        return scale_generate(interner, cfg, seed);
    }
    let mut rng = Rng::seeded(seed);
    let idb: Vec<_> = (0..cfg.idb_preds)
        .map(|k| (interner.intern(&format!("I{k}")), arity_of(k), k))
        .collect();
    let edb: Vec<_> = (0..cfg.edb_preds)
        .map(|k| (interner.intern(&format!("E{k}")), arity_of(k)))
        .collect();
    // Invention targets live outside the body pool: a `Vk` head may
    // invent values, and because `Vk` never occurs in any body the
    // invention cannot feed back — evaluation always terminates.
    let invent: Vec<_> = (0..2)
        .map(|k| (interner.intern(&format!("V{k}")), 2usize))
        .collect();

    let n_rules = 1 + rng.gen_index(cfg.max_rules);
    let mut rules = Vec::new();
    for _ in 0..n_rules {
        let n_vars = 1 + rng.gen_index(VAR_NAMES.len() - 2);
        let pick_term = |rng: &mut Rng| {
            if rng.gen_bool(0.12) {
                Term::Const(Value::Int(rng.gen_range_i64(0, cfg.universe)))
            } else {
                Term::Var(Var(rng.gen_index(n_vars) as u32))
            }
        };

        // Head: usually a plain idb atom; in the invention campaign,
        // sometimes an invention target with a fresh head variable.
        let inventing = campaign == Campaign::Invention && rng.gen_bool(0.35);
        let (head_pred, head_arity, head_level) = if inventing {
            let (p, a) = invent[rng.gen_index(invent.len())];
            (p, a, usize::MAX)
        } else {
            idb[rng.gen_index(idb.len())]
        };
        let head_args: Vec<Term> = if inventing {
            // `Vk(x, n)`: first column bound by the body, second invented.
            vec![
                Term::Var(Var(rng.gen_index(n_vars) as u32)),
                Term::Var(Var(n_vars as u32)),
            ]
        } else {
            (0..head_arity).map(|_| pick_term(&mut rng)).collect()
        };

        // Body literals. Negation discipline guarantees stratifiability:
        // a rule for the idb predicate at level L may use idb atoms of
        // level ≤ L positively and idb atoms of level < L negatively
        // (edb atoms freely, either sign). Every negative dependency
        // edge then strictly increases the level, so no cycle can pass
        // through a negation — the textbook sufficient condition.
        let n_body = 1 + rng.gen_index(cfg.max_body);
        let mut body = Vec::new();
        let stratified = matches!(
            campaign,
            Campaign::Negation | Campaign::Planner | Campaign::EditScript
        );
        for _ in 0..n_body {
            let negate = stratified && rng.gen_bool(0.3);
            let layered = stratified;
            let pos_pool = if layered {
                (head_level + 1).min(idb.len())
            } else {
                idb.len()
            };
            let neg_pool = head_level.min(idb.len());
            let from_edb = if negate {
                neg_pool == 0 || rng.gen_bool(0.5)
            } else {
                rng.gen_bool(0.5)
            };
            let (pred, arity) = if from_edb {
                edb[rng.gen_index(edb.len())]
            } else if negate {
                let (p, a, _) = idb[rng.gen_index(neg_pool)];
                (p, a)
            } else {
                let (p, a, _) = idb[rng.gen_index(pos_pool)];
                (p, a)
            };
            let args: Vec<Term> = (0..arity).map(|_| pick_term(&mut rng)).collect();
            let atom = Atom::new(pred, args);
            body.push(if negate {
                Literal::Neg(atom)
            } else {
                Literal::Pos(atom)
            });
        }
        // Occasionally a comparison literal in the nondet campaign
        // (equalities are part of Definition 5.1's rule syntax).
        if campaign == Campaign::Nondet && rng.gen_bool(0.25) {
            let s = Term::Var(Var(rng.gen_index(n_vars) as u32));
            let t = pick_term(&mut rng);
            body.push(if rng.gen_bool(0.5) {
                Literal::Eq(s, t)
            } else {
                Literal::Neq(s, t)
            });
        }

        // Safety patching. The nondeterministic engines require every
        // variable positively bound; the deterministic ones only need
        // head variables range-restricted (a negative occurrence binds
        // a variable to the active domain there, which the oracle
        // deliberately leaves exercised in the negation campaign).
        let needs_positive: Vec<Var> = {
            let positively_bound: std::collections::BTreeSet<Var> = body
                .iter()
                .filter_map(|l| match l {
                    Literal::Pos(a) => Some(a.vars().collect::<Vec<_>>()),
                    _ => None,
                })
                .flatten()
                .collect();
            let mut pending: Vec<Var> = if campaign == Campaign::Nondet {
                let mut all: Vec<Var> = body.iter().flat_map(|l| l.vars()).collect();
                all.extend(head_args.iter().filter_map(|t| t.as_var()));
                all
            } else {
                let body_vars: std::collections::BTreeSet<Var> =
                    body.iter().flat_map(|l| l.vars()).collect();
                head_args
                    .iter()
                    .filter_map(|t| t.as_var())
                    .filter(|v| !body_vars.contains(v))
                    .collect()
            };
            if inventing {
                // The invented variable stays unbound by design.
                pending.retain(|v| v.index() < n_vars);
            }
            pending.sort_unstable();
            pending.dedup();
            pending.retain(|v| !positively_bound.contains(v));
            pending
        };
        for v in needs_positive {
            let (pred, arity) = edb[0];
            let args: Vec<Term> = (0..arity).map(|_| Term::Var(v)).collect();
            body.push(Literal::Pos(Atom::new(pred, args)));
        }

        // Choice constraints ride on already-bound variables.
        if campaign == Campaign::Nondet && n_vars >= 2 && rng.gen_bool(0.3) {
            let left = Term::Var(Var(0));
            let right = Term::Var(Var(1));
            body.push(Literal::Choice(vec![left], vec![right]));
        }

        let max_var = n_vars + usize::from(inventing);
        rules.push(Rule {
            head: vec![HeadLiteral::Pos(Atom::new(head_pred, head_args))],
            body,
            forall: vec![],
            var_names: VAR_NAMES[..max_var].iter().map(|s| s.to_string()).collect(),
        });
    }
    let program = Program { rules }.normalized();

    let mut instance = Instance::new();
    for (k, (pred, arity)) in edb.iter().enumerate() {
        instance.ensure(*pred, *arity);
        // The planner campaign skews cardinalities hard (E1 ≫ E0) so
        // the cost-based ordering genuinely disagrees with the
        // syntactic one — otherwise the two legs would pick the same
        // plans and the differential test would be vacuous.
        let (facts, universe) = if campaign == Campaign::Planner {
            (
                cfg.facts_per_pred * (1 + 8 * k),
                cfg.universe * (1 + k as i64),
            )
        } else {
            (cfg.facts_per_pred, cfg.universe)
        };
        for _ in 0..facts {
            let tuple: Tuple = (0..*arity)
                .map(|_| Value::Int(rng.gen_range_i64(0, universe)))
                .collect();
            instance.insert_fact(*pred, tuple);
        }
    }
    (program, instance)
}

/// The pinned program pool for the scale campaign. Every program is
/// reachability-shaped so the idb stays `O(nodes + edges)` — large
/// enough to exercise segment freezing and morsel partitioning, small
/// enough that a 50-program budget stays interactive in release builds.
const SCALE_PROGRAMS: [&str; 3] = [
    // Single-source reachability (the bench `scale_reach` shape).
    "R(y) :- S(y).\nR(y) :- R(x), G(x,y).",
    // Reachability plus a stratified frontier: edges whose source was
    // never reached. Negation over an edb-bounded range keeps the
    // stratum cheap while still exercising the negative morsel path.
    "R(y) :- S(y).\nR(y) :- R(x), G(x,y).\nF(x,y) :- G(x,y), !R(x).",
    // Two independent sources joined on the intersection.
    "R(y) :- S(y).\nR(y) :- R(x), G(x,y).\nQ(y) :- T(y).\nQ(y) :- Q(x), G(x,y).\nB(x) :- R(x), Q(x).",
];

/// Scale-campaign generation: a layered pseudo-random digraph under one
/// of [`SCALE_PROGRAMS`]. Node `k` lives in layer `k % layers`; every
/// edge goes from layer `i` to layer `(i + 1) % layers`, so paths wrap
/// through short cycles and reachable sets saturate in a few rounds
/// while staying bounded by the node count.
fn scale_generate(interner: &mut Interner, cfg: GrammarConfig, seed: u64) -> (Program, Instance) {
    let mut rng = Rng::seeded(seed);
    let base = cfg.scale_edges.max(64);
    let edges = if rng.gen_bool(0.1) {
        base * 10
    } else {
        base * (1 + rng.gen_index(3))
    };
    let layers = 4 + rng.gen_index(4);
    let nodes = (edges / 2).max(layers * 2);
    let per_layer = nodes / layers;

    let text = SCALE_PROGRAMS[rng.gen_index(SCALE_PROGRAMS.len())];
    let program = unchained_parser::parse_program(text, interner)
        .expect("pinned scale program parses")
        .normalized();

    let g = interner.intern("G");
    let mut instance = Instance::new();
    instance.ensure(g, 2);
    for _ in 0..edges {
        let from = rng.gen_index(nodes);
        let next_layer = (from % layers + 1) % layers;
        let to = next_layer + layers * rng.gen_index(per_layer);
        instance.insert_fact(
            g,
            Tuple::from([Value::Int(from as i64), Value::Int(to as i64)]),
        );
    }
    // Seed relations: a handful of start nodes each.
    let mut seed_rel = |name: &str, interner: &mut Interner, rng: &mut Rng| {
        let sym = interner.intern(name);
        instance.ensure(sym, 1);
        for _ in 0..1 + rng.gen_index(4) {
            let node = rng.gen_index(nodes) as i64;
            instance.insert_fact(sym, Tuple::from([Value::Int(node)]));
        }
    };
    seed_rel("S", interner, &mut rng);
    if text.contains("T(") {
        seed_rel("T", interner, &mut rng);
    }
    (program, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_parser::{
        check_positively_bound, check_range_restricted, classify, parse_program, DependencyGraph,
        Language,
    };

    /// Default knobs, except the scale digraphs are shrunk so debug
    /// test builds stay interactive (the properties are size-free).
    fn test_cfg() -> GrammarConfig {
        GrammarConfig {
            scale_edges: 256,
            ..GrammarConfig::default()
        }
    }

    #[test]
    fn generated_programs_are_safe_for_their_campaign() {
        for campaign in Campaign::all() {
            for seed in 0..80u64 {
                let mut i = Interner::new();
                let (p, _) = generate(&mut i, campaign, test_cfg(), seed);
                let allow_invention = campaign == Campaign::Invention;
                check_range_restricted(&p, allow_invention)
                    .unwrap_or_else(|e| panic!("{campaign:?} seed {seed}: {e}"));
                match campaign {
                    Campaign::Positive => assert_eq!(classify(&p), Language::Datalog),
                    Campaign::Negation
                    | Campaign::Planner
                    | Campaign::EditScript
                    | Campaign::Scale => {
                        DependencyGraph::build(&p)
                            .stratify()
                            .unwrap_or_else(|e| panic!("seed {seed} not stratifiable: {e}"));
                    }
                    Campaign::Invention => {
                        assert!(classify(&p) <= Language::DatalogNegNew, "seed {seed}");
                        // No invention feedback: invented-head predicates
                        // never occur in bodies.
                        for rule in &p.rules {
                            for lit in &rule.body {
                                if let Some(a) = lit.atom() {
                                    assert!(!i.name(a.pred).starts_with('V'), "seed {seed}");
                                }
                            }
                        }
                    }
                    Campaign::Nondet => {
                        check_positively_bound(&p, false)
                            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn generated_programs_round_trip_through_the_printer() {
        for campaign in Campaign::all() {
            for seed in 0..80u64 {
                let mut i = Interner::new();
                let (p, _) = generate(&mut i, campaign, test_cfg(), seed);
                let text = p.display(&i).to_string();
                let reparsed = parse_program(&text, &mut i)
                    .unwrap_or_else(|e| panic!("{campaign:?} seed {seed}: {e}\n{text}"));
                assert_eq!(reparsed, p, "{campaign:?} seed {seed} round trip:\n{text}");
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        let (pa, ia) = generate(&mut a, Campaign::Negation, GrammarConfig::default(), 7);
        let (pb, ib) = generate(&mut b, Campaign::Negation, GrammarConfig::default(), 7);
        assert_eq!(pa, pb);
        assert!(ia.same_facts(&ib));
        let (pc, _) = generate(&mut a, Campaign::Negation, GrammarConfig::default(), 8);
        assert_ne!(pa, pc);
    }
}

//! Temporal (Dedalus-style) forward chaining — "Datalog in time and
//! space" \[19\], surveyed in Section 6 as a foundation for programming
//! and reasoning about distributed and *data-driven reactive* systems
//! (the fourth adoption domain in the paper's abstract).
//!
//! A [`TemporalProgram`] splits its rules into
//!
//! * **deductive** rules — hold *within* a timestep: the state is
//!   closed under them by an inflationary fixpoint;
//! * **inductive** rules — hold *across* timesteps: their heads are
//!   asserted at `t + 1` from bodies evaluated at the (deductively
//!   closed) state of `t`. Dedalus's explicit-persistence idiom is an
//!   inductive rule `R(x̄) ← R(x̄)`; nothing persists unless a rule
//!   says so.
//!
//! A run produces the trace `S₀, S₁, …`; like the noninflationary
//! languages of Section 4.2, reactive programs need not quiesce, so the
//! runner detects both **fixpoints** (`Sₜ₊₁ = Sₜ`) and **limit cycles**
//! (a repeated state, e.g. a blinking light) and otherwise stops at the
//! step budget.

use crate::ExchangeError;
use std::ops::ControlFlow;
use unchained_common::{FxHashMap, Instance, Symbol, Tuple};
use unchained_core::exec::{for_each_match, IndexCache, Sources};
use unchained_core::ir::Plan;
use unchained_core::planner::plan_rule;
use unchained_core::subst::{active_domain, instantiate};
use unchained_core::{inflationary, EvalError, EvalOptions};
use unchained_parser::{HeadLiteral, Program};

/// A temporal program: deductive (same-timestep) and inductive
/// (next-timestep) Datalog¬ rules over one schema.
#[derive(Clone, Debug)]
pub struct TemporalProgram {
    /// Rules closing each timestep's state (inflationary semantics).
    pub deductive: Program,
    /// Rules producing the next timestep's facts (one parallel firing
    /// against the deductively closed state).
    pub inductive: Program,
}

/// How a temporal run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemporalEnd {
    /// `Sₜ₊₁ = Sₜ`: the system quiesced.
    Fixpoint {
        /// The quiescent timestep.
        at: usize,
    },
    /// `Sₜ = Sₜ₋ₚ` for period `p > 0`: a limit cycle (e.g. a blinker).
    Cycle {
        /// First timestep of the repeated state.
        first: usize,
        /// Cycle length.
        period: usize,
    },
    /// The step budget ran out with no repetition detected.
    BudgetExhausted,
}

/// A temporal run: the state trace and how it ended.
#[derive(Clone, Debug)]
pub struct TemporalRun {
    /// `trace[t]` = the deductively closed state at timestep `t`.
    pub trace: Vec<Instance>,
    /// Why the run stopped.
    pub end: TemporalEnd,
}

impl TemporalRun {
    /// The final state.
    pub fn last(&self) -> &Instance {
        self.trace.last().expect("trace nonempty")
    }
}

/// Runs a temporal program from `initial` for at most `max_steps`
/// timesteps.
///
/// ```
/// use unchained_common::{Instance, Interner, Tuple, Value};
/// use unchained_exchange::temporal::{run_temporal, TemporalEnd, TemporalProgram};
/// use unchained_parser::parse_program;
///
/// let mut interner = Interner::new();
/// // The blinker: `on` toggles each step — a period-2 limit cycle.
/// let inductive = parse_program(
///     "lamp(x) :- lamp(x). on(x) :- lamp(x), !on(x).",
///     &mut interner,
/// ).unwrap();
/// let lamp = interner.get("lamp").unwrap();
/// let mut initial = Instance::new();
/// initial.insert_fact(lamp, Tuple::from([Value::Int(1)]));
/// let program = TemporalProgram { deductive: parse_program("", &mut interner).unwrap(), inductive };
/// let run = run_temporal(&program, &initial, 100).unwrap();
/// assert!(matches!(run.end, TemporalEnd::Cycle { period: 2, .. }));
/// ```
///
/// # Errors
/// Propagates engine errors from either rule set (wrapped as
/// [`ExchangeError::Local`] with pseudo-peer names `deductive` /
/// `inductive`).
pub fn run_temporal(
    program: &TemporalProgram,
    initial: &Instance,
    max_steps: usize,
) -> Result<TemporalRun, ExchangeError> {
    fn local(which: &str) -> impl Fn(EvalError) -> ExchangeError + '_ {
        move |error| ExchangeError::Local {
            peer: which.to_string(),
            error,
        }
    }
    let inductive_plans: Vec<Plan> = program.inductive.rules.iter().map(plan_rule).collect();

    let mut trace: Vec<Instance> = Vec::new();
    let mut seen: FxHashMap<u64, Vec<(usize, Instance)>> = FxHashMap::default();
    let mut state = initial.clone();
    loop {
        // Deductive closure of the current timestep.
        let closed = inflationary::eval(&program.deductive, &state, EvalOptions::default())
            .map_err(local("deductive"))?
            .instance;
        // Repetition detection on closed states.
        let t = trace.len();
        let fp = closed.fingerprint();
        if let Some(bucket) = seen.get(&fp) {
            if let Some((first, _)) = bucket.iter().find(|(_, s)| s.same_facts(&closed)) {
                let period = t - first;
                trace.push(closed);
                return Ok(TemporalRun {
                    trace,
                    end: if period == 1 {
                        // Immediate repetition of the previous state.
                        TemporalEnd::Fixpoint { at: *first }
                    } else {
                        TemporalEnd::Cycle {
                            first: *first,
                            period,
                        }
                    },
                });
            }
        }
        seen.entry(fp).or_default().push((t, closed.clone()));
        trace.push(closed.clone());
        if t >= max_steps {
            return Ok(TemporalRun {
                trace,
                end: TemporalEnd::BudgetExhausted,
            });
        }
        // One parallel inductive firing builds S_{t+1}.
        let adom = active_domain(&program.inductive, &closed);
        let mut cache = IndexCache::new();
        let mut next = Instance::new();
        for (rule, plan) in program.inductive.rules.iter().zip(&inductive_plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                return Err(ExchangeError::Local {
                    peer: "inductive".into(),
                    error: EvalError::WrongLanguage {
                        engine_accepts: unchained_parser::Language::DatalogNeg,
                        found: unchained_parser::classify(&program.inductive),
                    },
                });
            };
            let _ = for_each_match(
                plan,
                Sources::simple(&closed),
                &adom,
                &mut cache,
                &mut |env| {
                    let tuple: Tuple = instantiate(&head.args, env);
                    let pred: Symbol = head.pred;
                    next.insert_fact(pred, tuple);
                    ControlFlow::Continue(())
                },
            );
        }
        state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Value};
    use unchained_parser::parse_program;

    fn empty_program() -> Program {
        Program::new()
    }

    /// A counter walking a successor chain: `at` moves one step per
    /// timestep (succ is re-asserted by explicit persistence).
    #[test]
    fn counter_walks_the_chain() {
        let mut i = Interner::new();
        let inductive = parse_program(
            "succ(x,y) :- succ(x,y).\n\
             at(y) :- at(x), succ(x,y).",
            &mut i,
        )
        .unwrap();
        let succ = i.get("succ").unwrap();
        let at = i.get("at").unwrap();
        let mut initial = Instance::new();
        for k in 0..5i64 {
            initial.insert_fact(succ, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        initial.insert_fact(at, Tuple::from([Value::Int(0)]));
        let program = TemporalProgram {
            deductive: empty_program(),
            inductive,
        };
        let run = run_temporal(&program, &initial, 100).unwrap();
        // At timestep t the counter is at position t (until it falls
        // off the chain and the at-relation empties → fixpoint).
        assert!(run.trace[3].contains_fact(at, &Tuple::from([Value::Int(3)])));
        assert!(!run.trace[3].contains_fact(at, &Tuple::from([Value::Int(2)])));
        assert!(matches!(run.end, TemporalEnd::Fixpoint { .. }));
    }

    /// The blinker: `on` toggles every timestep — a period-2 limit
    /// cycle, detected as such.
    #[test]
    fn blinker_is_a_period_two_cycle() {
        let mut i = Interner::new();
        let inductive = parse_program(
            "lamp(x) :- lamp(x).\n\
             on(x) :- lamp(x), !on(x).",
            &mut i,
        )
        .unwrap();
        let lamp = i.get("lamp").unwrap();
        let on = i.get("on").unwrap();
        let mut initial = Instance::new();
        initial.insert_fact(lamp, Tuple::from([Value::Int(1)]));
        let program = TemporalProgram {
            deductive: empty_program(),
            inductive,
        };
        let run = run_temporal(&program, &initial, 100).unwrap();
        assert!(matches!(run.end, TemporalEnd::Cycle { period: 2, .. }));
        // Alternating on/off along the trace.
        let lit = |t: usize| run.trace[t].contains_fact(on, &Tuple::from([Value::Int(1)]));
        assert!(!lit(0) && lit(1) && !lit(2));
    }

    /// Deductive rules close each timestep: reachability is recomputed
    /// within every step while edges evolve inductively.
    #[test]
    fn deductive_closure_within_each_step() {
        let mut i = Interner::new();
        let deductive =
            parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        // Edges persist, and one new edge appears at every step from a
        // pending queue.
        let inductive = parse_program(
            "G(x,y) :- G(x,y).\n\
             nextedge(x,y,q) :- nextedge(x,y,q), !turn(q).\n\
             turn(q) :- turn(q).\n\
             G(x,y) :- nextedge(x,y,q), turn(q).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let nextedge = i.get("nextedge").unwrap();
        let turn = i.get("turn").unwrap();
        let mut initial = Instance::new();
        initial.insert_fact(g, Tuple::from([Value::Int(0), Value::Int(1)]));
        initial.insert_fact(
            nextedge,
            Tuple::from([Value::Int(1), Value::Int(2), Value::Int(0)]),
        );
        initial.insert_fact(turn, Tuple::from([Value::Int(0)]));
        let program = TemporalProgram {
            deductive,
            inductive,
        };
        let run = run_temporal(&program, &initial, 50).unwrap();
        // Step 0: only 0→1 closed. Step 1: edge 1→2 arrives; closure
        // includes 0→2.
        assert!(!run.trace[0].contains_fact(t, &Tuple::from([Value::Int(0), Value::Int(2)])));
        assert!(run.trace[1].contains_fact(t, &Tuple::from([Value::Int(0), Value::Int(2)])));
        assert!(matches!(run.end, TemporalEnd::Fixpoint { .. }));
    }

    /// Without a persistence rule, facts evaporate: Dedalus's explicit
    /// persistence, observed.
    #[test]
    fn no_persistence_rule_no_persistence() {
        let mut i = Interner::new();
        let inductive = parse_program("other(x) :- seed(x).", &mut i).unwrap();
        let seed = i.get("seed").unwrap();
        let other = i.get("other").unwrap();
        let mut initial = Instance::new();
        initial.insert_fact(seed, Tuple::from([Value::Int(9)]));
        let program = TemporalProgram {
            deductive: empty_program(),
            inductive,
        };
        let run = run_temporal(&program, &initial, 10).unwrap();
        assert!(run.trace[1].contains_fact(other, &Tuple::from([Value::Int(9)])));
        assert!(!run.trace[1].contains_fact(seed, &Tuple::from([Value::Int(9)])));
        // Step 2: everything is gone (other had no persistence either).
        assert!(run.trace[2].is_empty());
        assert!(matches!(run.end, TemporalEnd::Fixpoint { .. }));
    }

    #[test]
    fn budget_exhaustion_reported() {
        // An ever-growing counter chain never repeats within budget…
        // here simulated with an unbounded queue? Values cannot grow, so
        // use a long chain and a tiny budget instead.
        let mut i = Interner::new();
        let inductive =
            parse_program("succ(x,y) :- succ(x,y). at(y) :- at(x), succ(x,y).", &mut i).unwrap();
        let succ = i.get("succ").unwrap();
        let at = i.get("at").unwrap();
        let mut initial = Instance::new();
        for k in 0..50i64 {
            initial.insert_fact(succ, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        initial.insert_fact(at, Tuple::from([Value::Int(0)]));
        let program = TemporalProgram {
            deductive: empty_program(),
            inductive,
        };
        let run = run_temporal(&program, &initial, 5).unwrap();
        assert_eq!(run.trace.len(), 6);
        assert!(matches!(run.end, TemporalEnd::BudgetExhausted));
    }
}

//! # unchained-exchange
//!
//! Peer-to-peer data exchange with forward-chaining rules — the fourth
//! practical adoption domain named in the paper's abstract
//! ("distributed data exchange") and surveyed in Section 6 (Webdamlog
//! \[11\], Orchestra \[78\], and the "think global, act local" collaborative
//! workflows of \[16\]).
//!
//! The model is a deliberately small core of Webdamlog:
//!
//! * a **network** is a set of named peers, each holding a local
//!   [`Instance`] and a local Datalog¬ program evaluated under the
//!   **inflationary** (forward chaining) semantics — the semantics
//!   Webdamlog itself adopts;
//! * peers **export** facts: an export declaration `(local, to, remote)`
//!   ships every fact of the local relation `local` to peer `to`'s
//!   relation `remote` at the end of a round;
//! * a **round** runs every peer's local fixpoint and then delivers all
//!   exports; the network converges when a round delivers nothing new
//!   anywhere.
//!
//! Convergence is guaranteed for Datalog¬ rule sets on a fixed global
//! active domain (facts only accumulate), mirroring the inflationary
//! argument of Section 4.1 lifted to the network.
//!
//! The [`temporal`] module adds the Dedalus-style time dimension
//! ("Datalog in time and space", Section 6) for data-driven *reactive*
//! systems: deductive rules within a timestep, inductive rules across
//! timesteps, explicit persistence, and limit-cycle detection.
//!
//! ## Example
//!
//! ```
//! use unchained_common::{Instance, Interner, Tuple, Value};
//! use unchained_exchange::{Network, Peer};
//! use unchained_parser::parse_program;
//!
//! let mut interner = Interner::new();
//! // Peer "left" computes reachability over its edges and shares T.
//! let program = parse_program(
//!     "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). T(x,y) :- G(x,z), Timp(z,y).",
//!     &mut interner,
//! ).unwrap();
//! let g = interner.get("G").unwrap();
//! let t = interner.get("T").unwrap();
//! let timp = interner.get("Timp").unwrap();
//!
//! let mut network = Network::new();
//! let mut left_db = Instance::new();
//! left_db.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
//! let mut right_db = Instance::new();
//! right_db.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));
//! network.add_peer(Peer::new("left", program.clone(), left_db)
//!     .exporting(t, "right", timp));
//! network.add_peer(Peer::new("right", program, right_db)
//!     .exporting(t, "left", timp));
//!
//! let report = network.run_to_convergence(100).unwrap();
//! // Peer "left" learns the cross-peer path 1 → 3.
//! let left = network.peer("left").unwrap();
//! assert!(left.database.contains_fact(t, &Tuple::from([Value::Int(1), Value::Int(3)])));
//! assert!(report.rounds >= 2);
//! ```

pub mod temporal;

use std::collections::BTreeMap;
use std::fmt;
use unchained_common::{Instance, Symbol};
use unchained_core::{inflationary, EvalError, EvalOptions};
use unchained_parser::Program;

/// An export declaration: ship facts of `local` to peer `to`'s
/// relation `remote` after each round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Export {
    /// Local relation whose facts are shipped.
    pub local: Symbol,
    /// Destination peer name.
    pub to: String,
    /// Relation name at the destination.
    pub remote: Symbol,
}

/// A peer: a name, a local rule program (Datalog¬, inflationary
/// semantics), a local database, and export declarations.
#[derive(Clone, Debug)]
pub struct Peer {
    /// The peer's name (network-unique).
    pub name: String,
    /// Local forward-chaining rules.
    pub program: Program,
    /// Local database.
    pub database: Instance,
    /// Export declarations.
    pub exports: Vec<Export>,
}

impl Peer {
    /// Creates a peer.
    pub fn new(name: impl Into<String>, program: Program, database: Instance) -> Self {
        Peer {
            name: name.into(),
            program,
            database,
            exports: Vec::new(),
        }
    }

    /// Adds an export declaration (builder style).
    pub fn exporting(mut self, local: Symbol, to: impl Into<String>, remote: Symbol) -> Self {
        self.exports.push(Export {
            local,
            to: to.into(),
            remote,
        });
        self
    }
}

/// Errors from a network run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// A peer's local evaluation failed.
    Local {
        /// The peer.
        peer: String,
        /// The underlying engine error.
        error: EvalError,
    },
    /// An export references a peer that does not exist.
    UnknownPeer {
        /// The exporting peer.
        from: String,
        /// The missing destination.
        to: String,
    },
    /// The network did not converge within the round budget.
    RoundLimitExceeded(usize),
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Local { peer, error } => {
                write!(f, "peer `{peer}`: {error}")
            }
            ExchangeError::UnknownPeer { from, to } => {
                write!(f, "peer `{from}` exports to unknown peer `{to}`")
            }
            ExchangeError::RoundLimitExceeded(n) => {
                write!(f, "network did not converge within {n} rounds")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Statistics of a converged run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Rounds executed, including the final quiescent round.
    pub rounds: usize,
    /// Total facts delivered across peers over the whole run.
    pub delivered: usize,
    /// Total local fixpoint stages summed over peers and rounds.
    pub local_stages: usize,
}

/// A network of peers.
#[derive(Clone, Default, Debug)]
pub struct Network {
    peers: BTreeMap<String, Peer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a peer.
    pub fn add_peer(&mut self, peer: Peer) {
        self.peers.insert(peer.name.clone(), peer);
    }

    /// Looks up a peer by name.
    pub fn peer(&self, name: &str) -> Option<&Peer> {
        self.peers.get(name)
    }

    /// Peer names in deterministic order.
    pub fn peer_names(&self) -> Vec<String> {
        self.peers.keys().cloned().collect()
    }

    /// Runs one round: every peer's local inflationary fixpoint, then
    /// all deliveries. Returns `(facts delivered, local stages)`.
    pub fn round(&mut self, options: EvalOptions) -> Result<(usize, usize), ExchangeError> {
        // 1. Local fixpoints.
        let mut stages = 0;
        let names: Vec<String> = self.peers.keys().cloned().collect();
        for name in &names {
            let peer = self.peers.get_mut(name).expect("listed");
            let run = inflationary::eval(&peer.program, &peer.database, options.clone()).map_err(
                |error| ExchangeError::Local {
                    peer: name.clone(),
                    error,
                },
            )?;
            peer.database = run.instance;
            stages += run.stages;
        }
        // 2. Collect deliveries (reading phase, no mutation).
        let mut deliveries: Vec<(String, Symbol, unchained_common::Relation)> = Vec::new();
        for (name, peer) in &self.peers {
            for export in &peer.exports {
                if !self.peers.contains_key(&export.to) {
                    return Err(ExchangeError::UnknownPeer {
                        from: name.clone(),
                        to: export.to.clone(),
                    });
                }
                if let Some(rel) = peer.database.relation(export.local) {
                    if !rel.is_empty() {
                        deliveries.push((export.to.clone(), export.remote, rel.clone()));
                    }
                }
            }
        }
        // 3. Deliver.
        let mut delivered = 0;
        for (to, remote, rel) in deliveries {
            let target = self.peers.get_mut(&to).expect("validated");
            delivered += target.database.ensure(remote, rel.arity()).union_with(&rel);
        }
        Ok((delivered, stages))
    }

    /// Runs rounds until a round delivers nothing new, or the budget is
    /// exhausted.
    pub fn run_to_convergence(
        &mut self,
        max_rounds: usize,
    ) -> Result<ExchangeReport, ExchangeError> {
        let options = EvalOptions::default();
        let mut report = ExchangeReport {
            rounds: 0,
            delivered: 0,
            local_stages: 0,
        };
        loop {
            report.rounds += 1;
            if report.rounds > max_rounds {
                return Err(ExchangeError::RoundLimitExceeded(max_rounds));
            }
            let (delivered, stages) = self.round(options.clone())?;
            report.delivered += delivered;
            report.local_stages += stages;
            if delivered == 0 {
                return Ok(report);
            }
        }
    }

    /// The union of all peers' databases (the "global" view used to
    /// compare against a centralized run).
    pub fn global_view(&self) -> Instance {
        let mut global = Instance::new();
        for peer in self.peers.values() {
            for (pred, rel) in peer.database.iter() {
                if rel.is_empty() {
                    global.ensure(pred, rel.arity());
                } else {
                    global.ensure(pred, rel.arity()).union_with(rel);
                }
            }
        }
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    /// Split a line graph's edges across two peers; they exchange
    /// reachability facts and jointly compute the global transitive
    /// closure ("think global, act local").
    #[test]
    fn two_peer_transitive_closure_converges_to_global() {
        let mut i = Interner::new();
        // Each peer folds imported reachability (Timp) into its own T.
        let program = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- T(x,z), T(z,y).\n\
             T(x,y) :- Timp(x,y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let timp = i.get("Timp").unwrap();

        let n = 8i64;
        let mut even_db = Instance::new();
        let mut odd_db = Instance::new();
        for k in 0..n - 1 {
            let fact = Tuple::from([Value::Int(k), Value::Int(k + 1)]);
            if k % 2 == 0 {
                even_db.insert_fact(g, fact);
            } else {
                odd_db.insert_fact(g, fact);
            }
        }

        let mut network = Network::new();
        network.add_peer(Peer::new("even", program.clone(), even_db).exporting(t, "odd", timp));
        network.add_peer(Peer::new("odd", program.clone(), odd_db).exporting(t, "even", timp));
        let report = network.run_to_convergence(100).unwrap();
        assert!(report.rounds > 1, "cross-peer paths need exchange");

        // Compare with the centralized answer.
        let mut central_db = Instance::new();
        for k in 0..n - 1 {
            central_db.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let central = unchained_core::inflationary::eval(
            &parse_program("T(x,y) :- G(x,y). T(x,y) :- T(x,z), T(z,y).", &mut i).unwrap(),
            &central_db,
            EvalOptions::default(),
        )
        .unwrap();
        let expected = central.instance.relation(t).unwrap();
        for peer in ["even", "odd"] {
            let got = network.peer(peer).unwrap().database.relation(t).unwrap();
            assert!(got.same_tuples(expected), "peer {peer}");
        }
    }

    #[test]
    fn star_topology_aggregates_at_hub() {
        let mut i = Interner::new();
        let leaf_prog = parse_program("Report(x) :- Local(x).", &mut i).unwrap();
        let hub_prog = parse_program("All(x) :- Inbox(x).", &mut i).unwrap();
        let local = i.get("Local").unwrap();
        let report = i.get("Report").unwrap();
        let inbox = i.get("Inbox").unwrap();
        let all = i.get("All").unwrap();

        let mut network = Network::new();
        for (name, v) in [("leaf-a", 1i64), ("leaf-b", 2), ("leaf-c", 3)] {
            let mut db = Instance::new();
            db.insert_fact(local, Tuple::from([Value::Int(v)]));
            network
                .add_peer(Peer::new(name, leaf_prog.clone(), db).exporting(report, "hub", inbox));
        }
        network.add_peer(Peer::new("hub", hub_prog, Instance::new()));
        let report_stats = network.run_to_convergence(10).unwrap();
        let hub = network.peer("hub").unwrap();
        assert_eq!(hub.database.relation(all).unwrap().len(), 3);
        // Round 1 delivers the reports; round 2 absorbs them locally
        // and delivers nothing new → convergence.
        assert_eq!(report_stats.rounds, 2);
    }

    #[test]
    fn unknown_destination_rejected() {
        let mut i = Interner::new();
        let prog = parse_program("B(x) :- A(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        let b = i.get("B").unwrap();
        let mut db = Instance::new();
        db.insert_fact(a, Tuple::from([Value::Int(1)]));
        let mut network = Network::new();
        network.add_peer(Peer::new("solo", prog, db).exporting(b, "ghost", a));
        assert!(matches!(
            network.run_to_convergence(10),
            Err(ExchangeError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn round_limit_enforced() {
        // Two peers ping-ponging a growing relation would converge, but
        // with a budget of 1 round the deliveries are still pending.
        let mut i = Interner::new();
        let prog = parse_program("Out(x) :- In(x). Out(x) :- Seed(x).", &mut i).unwrap();
        let seed = i.get("Seed").unwrap();
        let out = i.get("Out").unwrap();
        let inn = i.get("In").unwrap();
        let mut db = Instance::new();
        db.insert_fact(seed, Tuple::from([Value::Int(1)]));
        let mut network = Network::new();
        network.add_peer(Peer::new("a", prog.clone(), db).exporting(out, "b", inn));
        network.add_peer(Peer::new("b", prog, Instance::new()).exporting(out, "a", inn));
        assert!(matches!(
            network.run_to_convergence(1),
            Err(ExchangeError::RoundLimitExceeded(1))
        ));
    }

    #[test]
    fn self_loop_export_is_idempotent() {
        // A peer exporting to itself reaches a fixpoint immediately
        // after the copy stabilizes.
        let mut i = Interner::new();
        let prog = parse_program("B(x) :- A(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        let b = i.get("B").unwrap();
        let mut db = Instance::new();
        db.insert_fact(a, Tuple::from([Value::Int(1)]));
        let mut network = Network::new();
        network.add_peer(Peer::new("me", prog, db).exporting(b, "me", a));
        let report = network.run_to_convergence(10).unwrap();
        assert!(report.rounds <= 3);
        let me = network.peer("me").unwrap();
        assert_eq!(me.database.relation(b).unwrap().len(), 1);
    }

    #[test]
    fn global_view_unions_databases() {
        let mut i = Interner::new();
        let prog = parse_program("B(x) :- A(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        let mut db1 = Instance::new();
        db1.insert_fact(a, Tuple::from([Value::Int(1)]));
        let mut db2 = Instance::new();
        db2.insert_fact(a, Tuple::from([Value::Int(2)]));
        let mut network = Network::new();
        network.add_peer(Peer::new("p1", prog.clone(), db1));
        network.add_peer(Peer::new("p2", prog, db2));
        let global = network.global_view();
        assert_eq!(global.relation(a).unwrap().len(), 2);
    }
}

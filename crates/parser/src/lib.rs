//! # unchained-parser
//!
//! Syntax for the whole *Datalog Unchained* language family: an AST
//! covering Datalog, Datalog¬, Datalog¬¬, Datalog¬new and the
//! nondeterministic variants (multi-literal heads, equalities, `⊥`,
//! `forall`); a lexer and parser for a concrete text syntax (accepting
//! both ASCII `:-`/`!` and the paper's `←`/`¬`/`∀`/`⊥` notation); and
//! static analysis (range restriction, positive binding, dependency
//! graph, stratification, language classification).
//!
//! ## Example
//!
//! ```
//! use unchained_common::Interner;
//! use unchained_parser::{parse_program, classify, Language};
//!
//! let mut interner = Interner::new();
//! let program = parse_program(
//!     "T(x,y) :- G(x,y).\n\
//!      T(x,y) :- G(x,z), T(z,y).",
//!     &mut interner,
//! ).unwrap();
//! assert_eq!(classify(&program), Language::Datalog);
//! ```

pub mod analysis;
pub mod ast;
pub mod lexer;
pub mod parser;

pub use analysis::{
    check_positively_bound, check_range_restricted, classify, features, AnalysisError,
    DependencyGraph, Features, Language, Stratification,
};
pub use ast::{Atom, HeadLiteral, Literal, Program, Rule, Term, Var};
pub use lexer::{lex, LexError, Pos, Token, TokenKind};
pub use parser::{parse_facts, parse_program, ParseError};

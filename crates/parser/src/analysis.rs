//! Static analysis of rule programs: range restriction (safety),
//! positive-binding checks, the predicate dependency graph,
//! stratification, and classification into the paper's language family.

use crate::ast::{HeadLiteral, Literal, Program, Rule, Term, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use unchained_common::Symbol;

/// An analysis error (program rejected by a language's syntactic
/// conditions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// A head variable does not occur in the body at all (illegal in
    /// every language except Datalog¬new, where such variables denote
    /// invented values).
    UnrestrictedHeadVar {
        /// Index of the offending rule in the program.
        rule: usize,
        /// The variable's name.
        var: String,
    },
    /// A head variable is not *positively bound* in the body, violating
    /// Definition 5.1's condition for the nondeterministic languages.
    HeadVarNotPositivelyBound {
        /// Index of the offending rule in the program.
        rule: usize,
        /// The variable's name.
        var: String,
    },
    /// A universally quantified variable also occurs in the head.
    ForallVarInHead {
        /// Index of the offending rule in the program.
        rule: usize,
        /// The variable's name.
        var: String,
    },
    /// The program has recursion through negation, so it is not
    /// stratifiable.
    NotStratifiable {
        /// A predicate in an SCC with an internal negative edge.
        witness: Symbol,
    },
    /// One relation symbol is used with two different arities.
    ArityConflict(unchained_common::schema::ArityConflict),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnrestrictedHeadVar { rule, var } => write!(
                f,
                "rule {rule}: head variable `{var}` does not occur in the body"
            ),
            AnalysisError::HeadVarNotPositivelyBound { rule, var } => write!(
                f,
                "rule {rule}: head variable `{var}` is not positively bound in the body"
            ),
            AnalysisError::ForallVarInHead { rule, var } => write!(
                f,
                "rule {rule}: universally quantified variable `{var}` occurs in the head"
            ),
            AnalysisError::NotStratifiable { witness } => write!(
                f,
                "program is not stratifiable (recursion through negation involving {witness:?})"
            ),
            AnalysisError::ArityConflict(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<unchained_common::schema::ArityConflict> for AnalysisError {
    fn from(c: unchained_common::schema::ArityConflict) -> Self {
        AnalysisError::ArityConflict(c)
    }
}

/// Checks the paper's range-restriction condition for the deterministic
/// languages: *every variable occurring in a rule head also occurs in the
/// rule body* (in any literal — negative literals and (in)equalities
/// count, because the procedural semantics valuates variables over the
/// whole active domain).
///
/// Variables occurring in the head only are permitted when
/// `allow_invention` is set (Datalog¬new).
pub fn check_range_restricted(
    program: &Program,
    allow_invention: bool,
) -> Result<(), AnalysisError> {
    for (idx, rule) in program.rules.iter().enumerate() {
        if allow_invention {
            continue;
        }
        let body: BTreeSet<Var> = rule.body_vars().into_iter().collect();
        for v in rule.head_vars() {
            if !body.contains(&v) {
                return Err(AnalysisError::UnrestrictedHeadVar {
                    rule: idx,
                    var: rule.var_names[v.index()].clone(),
                });
            }
        }
    }
    Ok(())
}

/// Variables of `rule` that are *positively bound*: they occur in a
/// positive relational atom, or are connected to a constant or to a
/// positively bound variable through a chain of positive equalities.
pub fn positively_bound_vars(rule: &Rule) -> BTreeSet<Var> {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    for lit in &rule.body {
        if let Literal::Pos(atom) = lit {
            bound.extend(atom.vars());
        }
    }
    // Propagate through equalities until a fixpoint.
    loop {
        let mut changed = false;
        for lit in &rule.body {
            if let Literal::Eq(s, t) = lit {
                let s_bound = match s {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                let t_bound = match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                if s_bound && !t_bound {
                    if let Term::Var(v) = t {
                        changed |= bound.insert(*v);
                    }
                }
                if t_bound && !s_bound {
                    if let Term::Var(v) = s {
                        changed |= bound.insert(*v);
                    }
                }
            }
        }
        if !changed {
            return bound;
        }
    }
}

/// Checks Definition 5.1's condition for the nondeterministic languages:
/// every head variable is positively bound in the body. Also checks that
/// `forall` variables do not occur in heads.
///
/// With `allow_invention` (N-Datalog¬new), head-only variables are
/// exempt.
pub fn check_positively_bound(
    program: &Program,
    allow_invention: bool,
) -> Result<(), AnalysisError> {
    for (idx, rule) in program.rules.iter().enumerate() {
        let bound = positively_bound_vars(rule);
        let body: BTreeSet<Var> = rule.body_vars().into_iter().collect();
        let forall: BTreeSet<Var> = rule.forall.iter().copied().collect();
        for v in rule.head_vars() {
            if forall.contains(&v) {
                return Err(AnalysisError::ForallVarInHead {
                    rule: idx,
                    var: rule.var_names[v.index()].clone(),
                });
            }
            if bound.contains(&v) {
                continue;
            }
            if allow_invention && !body.contains(&v) {
                continue; // invented-value variable
            }
            return Err(AnalysisError::HeadVarNotPositivelyBound {
                rule: idx,
                var: rule.var_names[v.index()].clone(),
            });
        }
    }
    Ok(())
}

/// An edge of the predicate dependency graph: the head predicate depends
/// on the body predicate, positively or negatively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DepEdge {
    /// The predicate being defined (head).
    pub head: Symbol,
    /// The predicate it reads (body).
    pub body: Symbol,
    /// True if `body` occurs under negation in some rule defining `head`.
    pub negative: bool,
}

/// The predicate dependency graph of a program.
///
/// Head predicates depend on every predicate in the same rule's body.
/// Negative head literals (Datalog¬¬ deletions) also record dependencies,
/// marked negative, because a deletion's effect is non-monotone.
#[derive(Clone, Default, Debug)]
pub struct DependencyGraph {
    /// `deps[p]` = set of (dependency, is_negative) pairs for predicate
    /// `p`. A dependency can be recorded both positively and negatively.
    deps: BTreeMap<Symbol, BTreeSet<(Symbol, bool)>>,
    nodes: BTreeSet<Symbol>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `program`.
    pub fn build(program: &Program) -> Self {
        let mut graph = DependencyGraph::default();
        for rule in &program.rules {
            for lit in &rule.body {
                if let Some(atom) = lit.atom() {
                    graph.nodes.insert(atom.pred);
                }
            }
            for head in &rule.head {
                let Some(head_atom) = head.atom() else {
                    continue;
                };
                graph.nodes.insert(head_atom.pred);
                let head_negative = matches!(head, HeadLiteral::Neg(_));
                for lit in &rule.body {
                    let (pred, lit_negative) = match lit {
                        Literal::Pos(a) => (a.pred, false),
                        Literal::Neg(a) => (a.pred, true),
                        _ => continue,
                    };
                    graph
                        .deps
                        .entry(head_atom.pred)
                        .or_default()
                        .insert((pred, lit_negative || head_negative));
                }
            }
        }
        graph
    }

    /// All predicates mentioned by the program.
    pub fn nodes(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.nodes.iter().copied()
    }

    /// The dependencies of `pred` as `(dependency, negative)` pairs.
    pub fn dependencies(&self, pred: Symbol) -> impl Iterator<Item = (Symbol, bool)> + '_ {
        self.deps.get(&pred).into_iter().flatten().copied()
    }

    /// Computes a stratification: a map from predicate to stratum number
    /// such that positive dependencies stay within or below the stratum
    /// and negative dependencies come strictly below. Returns an error if
    /// the program has recursion through negation.
    ///
    /// Uses Bellman-Ford-style level relaxation, failing once a level
    /// exceeds the number of predicates (which certifies a negative
    /// cycle).
    pub fn stratify(&self) -> Result<Stratification, AnalysisError> {
        let mut level: BTreeMap<Symbol, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        let max = self.nodes.len();
        loop {
            let mut changed = false;
            for (&head, deps) in &self.deps {
                for &(body, negative) in deps {
                    let need = level[&body] + usize::from(negative);
                    if level[&head] < need {
                        if need > max {
                            return Err(AnalysisError::NotStratifiable { witness: head });
                        }
                        level.insert(head, need);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let strata_count = level.values().max().map_or(0, |&m| m + 1);
        Ok(Stratification {
            level,
            strata_count,
        })
    }
}

/// A stratification of a program's predicates.
#[derive(Clone, Debug)]
pub struct Stratification {
    level: BTreeMap<Symbol, usize>,
    strata_count: usize,
}

impl Stratification {
    /// The stratum of a predicate (0 if unknown to the program).
    pub fn stratum(&self, pred: Symbol) -> usize {
        self.level.get(&pred).copied().unwrap_or(0)
    }

    /// The number of strata.
    pub fn strata_count(&self) -> usize {
        self.strata_count
    }

    /// Partitions `rules` of a program by the stratum of their (single,
    /// positive) head predicate. Index `i` of the result holds the rules
    /// of stratum `i`.
    pub fn partition_rules<'p>(&self, program: &'p Program) -> Vec<Vec<&'p Rule>> {
        let mut out: Vec<Vec<&Rule>> = vec![Vec::new(); self.strata_count.max(1)];
        for rule in &program.rules {
            if let Some(atom) = rule.head.first().and_then(HeadLiteral::atom) {
                out[self.stratum(atom.pred)].push(rule);
            }
        }
        out
    }
}

/// Syntactic feature flags of a program, used to classify it into the
/// paper's language family.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Features {
    /// Some body literal is negated.
    pub body_negation: bool,
    /// Some head literal is negated (Datalog¬¬ retraction).
    pub head_negation: bool,
    /// Some rule has more than one head literal (N-Datalog¬¬).
    pub multi_head: bool,
    /// Some rule derives `⊥` (N-Datalog¬⊥).
    pub bottom: bool,
    /// Some rule has a `forall` prefix (N-Datalog¬∀).
    pub forall: bool,
    /// Some rule invents values (head-only variables, Datalog¬new).
    pub invention: bool,
    /// Some body literal is an (in)equality.
    pub equality: bool,
    /// Some body literal is a `choice` constraint (LDL-style).
    pub choice: bool,
}

/// Computes the syntactic [`Features`] of a program.
pub fn features(program: &Program) -> Features {
    let mut f = Features::default();
    for rule in &program.rules {
        if rule.head.len() > 1 {
            f.multi_head = true;
        }
        if !rule.forall.is_empty() {
            f.forall = true;
        }
        if !rule.invented_vars().is_empty() {
            f.invention = true;
        }
        for h in &rule.head {
            match h {
                HeadLiteral::Neg(_) => f.head_negation = true,
                HeadLiteral::Bottom => f.bottom = true,
                HeadLiteral::Pos(_) => {}
            }
        }
        for l in &rule.body {
            match l {
                Literal::Neg(_) => f.body_negation = true,
                Literal::Eq(..) | Literal::Neq(..) => f.equality = true,
                Literal::Choice(..) => f.choice = true,
                Literal::Pos(_) => {}
            }
        }
    }
    f
}

/// The language a program (syntactically) belongs to, from most to least
/// restrictive. This mirrors the family of Figure 1 in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Language {
    /// Pure positive Datalog.
    Datalog,
    /// Datalog¬ where negation is applied only to edb predicates.
    SemipositiveDatalogNeg,
    /// Datalog¬ without recursion through negation.
    StratifiedDatalogNeg,
    /// Full Datalog¬ (body negation, single positive heads).
    DatalogNeg,
    /// Datalog¬¬ (negations in heads: retraction / updates).
    DatalogNegNeg,
    /// Datalog¬new (value invention).
    DatalogNegNew,
    /// Requires a nondeterministic language (multi-head, equality, `⊥`
    /// or `forall`).
    Nondeterministic,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Language::Datalog => "Datalog",
            Language::SemipositiveDatalogNeg => "semipositive Datalog¬",
            Language::StratifiedDatalogNeg => "stratified Datalog¬",
            Language::DatalogNeg => "Datalog¬",
            Language::DatalogNegNeg => "Datalog¬¬",
            Language::DatalogNegNew => "Datalog¬new",
            Language::Nondeterministic => "N-Datalog (nondeterministic family)",
        };
        f.write_str(s)
    }
}

/// Classifies a program into the most restrictive language of the family
/// that (syntactically) contains it.
pub fn classify(program: &Program) -> Language {
    let f = features(program);
    if f.multi_head || f.bottom || f.forall || f.equality || f.choice {
        return Language::Nondeterministic;
    }
    if f.invention {
        return Language::DatalogNegNew;
    }
    if f.head_negation {
        return Language::DatalogNegNeg;
    }
    if !f.body_negation {
        return Language::Datalog;
    }
    // Distinguish semipositive / stratified / full Datalog¬.
    let idb: BTreeSet<Symbol> = program.idb().into_iter().collect();
    let negates_idb = program.rules.iter().any(|r| {
        r.body.iter().any(|l| match l {
            Literal::Neg(a) => idb.contains(&a.pred),
            _ => false,
        })
    });
    if !negates_idb {
        return Language::SemipositiveDatalogNeg;
    }
    let graph = DependencyGraph::build(program);
    if graph.stratify().is_ok() {
        Language::StratifiedDatalogNeg
    } else {
        Language::DatalogNeg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use unchained_common::Interner;

    fn program(src: &str) -> (Program, Interner) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        (p, i)
    }

    #[test]
    fn classify_pure_datalog() {
        let (p, _) = program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        assert_eq!(classify(&p), Language::Datalog);
    }

    #[test]
    fn classify_semipositive() {
        // Negation applied only to the edb predicate G.
        let (p, _) = program("NG(x,y) :- V(x), V(y), !G(x,y).");
        assert_eq!(classify(&p), Language::SemipositiveDatalogNeg);
    }

    #[test]
    fn classify_stratified() {
        let (p, _) = program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y).");
        assert_eq!(classify(&p), Language::StratifiedDatalogNeg);
    }

    #[test]
    fn classify_unstratifiable() {
        let (p, _) = program("win(x) :- moves(x,y), !win(y).");
        assert_eq!(classify(&p), Language::DatalogNeg);
    }

    #[test]
    fn classify_updates_and_invention_and_nondet() {
        let (p, _) = program("!T(1) :- T(1).");
        assert_eq!(classify(&p), Language::DatalogNegNeg);
        let (p, _) = program("P(x, n) :- Q(x).");
        assert_eq!(classify(&p), Language::DatalogNegNew);
        let (p, _) = program("A(x), B(x) :- C(x).");
        assert_eq!(classify(&p), Language::Nondeterministic);
        let (p, _) = program("A(x) :- forall y : C(x), !D(x,y).");
        assert_eq!(classify(&p), Language::Nondeterministic);
        let (p, _) = program("bottom :- C(x).");
        assert_eq!(classify(&p), Language::Nondeterministic);
        let (p, _) = program("A(x) :- C(x,y), x = y.");
        assert_eq!(classify(&p), Language::Nondeterministic);
    }

    #[test]
    fn stratification_levels() {
        let (p, i) = program(
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y). D(x) :- CT(x,x).",
        );
        let strat = DependencyGraph::build(&p).stratify().unwrap();
        let t = i.get("T").unwrap();
        let ct = i.get("CT").unwrap();
        let d = i.get("D").unwrap();
        let g = i.get("G").unwrap();
        assert_eq!(strat.stratum(g), 0);
        assert_eq!(strat.stratum(t), 0);
        assert_eq!(strat.stratum(ct), 1);
        assert_eq!(strat.stratum(d), 1);
        assert_eq!(strat.strata_count(), 2);
    }

    #[test]
    fn stratify_rejects_negative_cycle() {
        let (p, _) = program("A(x) :- B(x), !C(x). C(x) :- A(x).");
        assert!(DependencyGraph::build(&p).stratify().is_err());
    }

    #[test]
    fn partition_rules_by_stratum() {
        let (p, _) = program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y).");
        let strat = DependencyGraph::build(&p).stratify().unwrap();
        let parts = strat.partition_rules(&p);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 1);
    }

    #[test]
    fn range_restriction() {
        let (p, _) = program("A(x,y) :- B(x).");
        assert!(matches!(
            check_range_restricted(&p, false),
            Err(AnalysisError::UnrestrictedHeadVar { .. })
        ));
        assert!(check_range_restricted(&p, true).is_ok());
        // Negative literals count for range restriction (CT example).
        let (p, _) = program("CT(x,y) :- !T(x,y).");
        assert!(check_range_restricted(&p, false).is_ok());
    }

    #[test]
    fn positive_binding() {
        // Head var bound only by a negative literal: rejected for N-Datalog.
        let (p, _) = program("A(x) :- !B(x).");
        assert!(matches!(
            check_positively_bound(&p, false),
            Err(AnalysisError::HeadVarNotPositivelyBound { .. })
        ));
        // Bound through an equality chain to a constant.
        let (p, _) = program("A(x) :- B(y), x = 1.");
        assert!(check_positively_bound(&p, false).is_ok());
        // Bound transitively: y positive, x = y.
        let (p, _) = program("A(x) :- B(y), x = y.");
        assert!(check_positively_bound(&p, false).is_ok());
    }

    #[test]
    fn forall_var_cannot_be_in_head() {
        let (p, _) = program("A(y) :- forall y : B(y).");
        assert!(matches!(
            check_positively_bound(&p, false),
            Err(AnalysisError::ForallVarInHead { .. })
        ));
    }

    #[test]
    fn features_detection() {
        let (p, _) = program("A(x), !B(x) :- C(x), !D(x), x != 1.");
        let f = features(&p);
        assert!(f.multi_head && f.head_negation && f.body_negation && f.equality);
        assert!(!f.bottom && !f.forall && !f.invention);
    }

    #[test]
    fn dependency_graph_edges() {
        let (p, i) = program("A(x) :- B(x), !C(x).");
        let g = DependencyGraph::build(&p);
        let a = i.get("A").unwrap();
        let deps: Vec<_> = g.dependencies(a).collect();
        assert_eq!(deps.len(), 2);
        assert!(deps.contains(&(i.get("B").unwrap(), false)));
        assert!(deps.contains(&(i.get("C").unwrap(), true)));
    }
}

//! Abstract syntax for the whole language family.
//!
//! One AST covers every language in the paper; the *analysis* module
//! classifies a program into the family it belongs to (pure Datalog,
//! semipositive, stratified, Datalog¬, Datalog¬¬, Datalog¬new,
//! N-Datalog¬∀, N-Datalog¬⊥, …) and each engine rejects programs outside
//! its language.
//!
//! Variables are **rule-scoped**: a [`Var`] is an index into the owning
//! rule's variable-name table, and the same name in two rules denotes two
//! unrelated variables — exactly the scoping of the paper's rule syntax.

use std::fmt;
use unchained_common::{Interner, Schema, Symbol, Value};

/// A rule-scoped variable (index into [`Rule::var_names`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A rule-scoped variable.
    Var(Var),
    /// A domain constant.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A predicate applied to terms, e.g. `T(x, 'a')`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub pred: Symbol,
    /// Argument terms; the atom's arity is `args.len()`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: Symbol, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Iterates over the constants occurring in the atom.
    pub fn consts(&self) -> impl Iterator<Item = Value> + '_ {
        self.args.iter().filter_map(|t| match t {
            Term::Const(v) => Some(*v),
            Term::Var(_) => None,
        })
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// A positive atom `R(u)`.
    Pos(Atom),
    /// A negative atom `¬R(u)`.
    Neg(Atom),
    /// Equality `s = t` (available in the nondeterministic languages,
    /// Definition 5.1; harmless elsewhere).
    Eq(Term, Term),
    /// Inequality `s ≠ t`.
    Neq(Term, Term),
    /// The choice operator `choice((x̄),(ȳ))` of LDL (discussed in
    /// Section 5.2): constrains the rule's firings so that, per rule,
    /// the chosen pairs form a *function* from `x̄`-values to
    /// `ȳ`-values. Only the nondeterministic engines interpret it.
    Choice(Vec<Term>, Vec<Term>),
}

impl Literal {
    /// The underlying atom for (positive or negative) relational literals.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// Variables occurring in the literal.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.vars().collect(),
            Literal::Eq(s, t) | Literal::Neq(s, t) => {
                s.as_var().into_iter().chain(t.as_var()).collect()
            }
            Literal::Choice(left, right) => left
                .iter()
                .chain(right)
                .filter_map(|t| t.as_var())
                .collect(),
        }
    }
}

/// A head literal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum HeadLiteral {
    /// Assert a fact (`R(u)`).
    Pos(Atom),
    /// Retract a fact (`¬R(u)`): Datalog¬¬ / N-Datalog¬¬ only.
    Neg(Atom),
    /// The inconsistency symbol `⊥` of N-Datalog¬⊥: deriving it abandons
    /// the computation.
    Bottom,
}

impl HeadLiteral {
    /// The underlying atom for relational head literals.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            HeadLiteral::Pos(a) | HeadLiteral::Neg(a) => Some(a),
            HeadLiteral::Bottom => None,
        }
    }
}

/// One rule `A1, …, Ak ← [∀ x̄] L1, …, Ln`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head literals (a single positive atom in plain Datalog(¬); possibly
    /// several, possibly negative, in the update/nondeterministic
    /// languages).
    pub head: Vec<HeadLiteral>,
    /// Body literals. May be empty (a ground fact / unconditional rule,
    /// like `delay ←` in Example 4.4).
    pub body: Vec<Literal>,
    /// Universally quantified body variables (N-Datalog¬∀). Empty in
    /// every other language.
    pub forall: Vec<Var>,
    /// Names of the rule's variables, indexed by [`Var`].
    pub var_names: Vec<String>,
}

impl Rule {
    /// Number of distinct variables in the rule.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Variables occurring in the head.
    pub fn head_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self
            .head
            .iter()
            .filter_map(HeadLiteral::atom)
            .flat_map(Atom::vars)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Variables occurring in the body.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self.body.iter().flat_map(|l| l.vars()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Variables occurring in the head but nowhere in the body — the
    /// *invented-value* variables of Datalog¬new (Section 4.3).
    pub fn invented_vars(&self) -> Vec<Var> {
        let body: std::collections::BTreeSet<Var> = self.body_vars().into_iter().collect();
        self.head_vars()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Visits every term of the rule in *parse order*: head literals,
    /// then the `forall` prefix, then body literals. This is the order
    /// in which [`crate::parse_program`] first encounters variables, so
    /// it defines the canonical variable numbering.
    fn visit_terms(&self, mut f: impl FnMut(&Term)) {
        for h in &self.head {
            if let Some(a) = h.atom() {
                a.args.iter().for_each(&mut f);
            }
        }
        for v in &self.forall {
            f(&Term::Var(*v));
        }
        for l in &self.body {
            match l {
                Literal::Pos(a) | Literal::Neg(a) => a.args.iter().for_each(&mut f),
                Literal::Eq(s, t) | Literal::Neq(s, t) => {
                    f(s);
                    f(t);
                }
                Literal::Choice(left, right) => left.iter().chain(right).for_each(&mut f),
            }
        }
    }

    /// The rule with variables renumbered to first-occurrence order
    /// (head, then `forall` prefix, then body) and unused names dropped
    /// — exactly the numbering [`crate::parse_program`] produces, so a
    /// normalized rule survives a print/parse round trip *structurally*
    /// unchanged (`parse(print(r)) == r`), not merely textually.
    ///
    /// Distinct variables sharing a name cannot be normalized (the
    /// parser would unify them); such rules only arise from programmatic
    /// construction and keep their distinct identities here, without a
    /// round-trip guarantee.
    pub fn normalized(&self) -> Rule {
        let mut order: Vec<Var> = Vec::new();
        let mut map: std::collections::BTreeMap<Var, Var> = std::collections::BTreeMap::new();
        self.visit_terms(|t| {
            if let Term::Var(v) = t {
                if !map.contains_key(v) {
                    map.insert(*v, Var(order.len() as u32));
                    order.push(*v);
                }
            }
        });
        let remap = |t: &Term| match t {
            Term::Var(v) => Term::Var(map[v]),
            Term::Const(c) => Term::Const(*c),
        };
        let remap_atom = |a: &Atom| Atom::new(a.pred, a.args.iter().map(remap).collect());
        Rule {
            head: self
                .head
                .iter()
                .map(|h| match h {
                    HeadLiteral::Pos(a) => HeadLiteral::Pos(remap_atom(a)),
                    HeadLiteral::Neg(a) => HeadLiteral::Neg(remap_atom(a)),
                    HeadLiteral::Bottom => HeadLiteral::Bottom,
                })
                .collect(),
            body: self
                .body
                .iter()
                .map(|l| match l {
                    Literal::Pos(a) => Literal::Pos(remap_atom(a)),
                    Literal::Neg(a) => Literal::Neg(remap_atom(a)),
                    Literal::Eq(s, t) => Literal::Eq(remap(s), remap(t)),
                    Literal::Neq(s, t) => Literal::Neq(remap(s), remap(t)),
                    Literal::Choice(left, right) => Literal::Choice(
                        left.iter().map(remap).collect(),
                        right.iter().map(remap).collect(),
                    ),
                })
                .collect(),
            forall: self.forall.iter().map(|v| map[v]).collect(),
            var_names: order
                .iter()
                .map(|v| self.var_names[v.index()].clone())
                .collect(),
        }
    }

    /// All constants in the rule.
    pub fn consts(&self) -> Vec<Value> {
        let mut out = Vec::new();
        for h in &self.head {
            if let Some(a) = h.atom() {
                out.extend(a.consts());
            }
        }
        for l in &self.body {
            match l {
                Literal::Pos(a) | Literal::Neg(a) => out.extend(a.consts()),
                Literal::Eq(s, t) | Literal::Neq(s, t) => {
                    for term in [s, t] {
                        if let Term::Const(v) = term {
                            out.push(*v);
                        }
                    }
                }
                Literal::Choice(left, right) => {
                    for term in left.iter().chain(right) {
                        if let Term::Const(v) = term {
                            out.push(*v);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A program: a finite set (here: sequence) of rules.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Program {
    /// The rules, in source order. Order never affects semantics in any
    /// of the paper's languages; we keep it for display and diagnostics.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The schema `sch(P)` of all relations used by the program, with
    /// arities. Fails on arity conflicts.
    pub fn schema(&self) -> Result<Schema, unchained_common::schema::ArityConflict> {
        let mut schema = Schema::new();
        for rule in &self.rules {
            for h in &rule.head {
                if let Some(a) = h.atom() {
                    schema.declare(a.pred, a.arity())?;
                }
            }
            for l in &rule.body {
                if let Some(a) = l.atom() {
                    schema.declare(a.pred, a.arity())?;
                }
            }
        }
        Ok(schema)
    }

    /// The intensional relations `idb(P)`: those occurring in some head.
    pub fn idb(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .rules
            .iter()
            .flat_map(|r| r.head.iter().filter_map(HeadLiteral::atom))
            .map(|a| a.pred)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The extensional relations `edb(P)`: those occurring only in rule
    /// bodies.
    pub fn edb(&self) -> Vec<Symbol> {
        let idb: std::collections::BTreeSet<Symbol> = self.idb().into_iter().collect();
        let mut out: Vec<Symbol> = self
            .rules
            .iter()
            .flat_map(|r| r.body.iter())
            .filter_map(Literal::atom)
            .map(|a| a.pred)
            .filter(|p| !idb.contains(p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The constants `adom(P)` occurring in the program text.
    pub fn adom(&self) -> Vec<Value> {
        let mut out: Vec<Value> = self.rules.iter().flat_map(|r| r.consts()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The program with every rule [normalized](Rule::normalized) to the
    /// parser's canonical variable numbering. A normalized program is
    /// the fixed point of print-then-parse: for any normalized `p`,
    /// `parse_program(&p.display(i).to_string(), i) == Ok(p)`.
    pub fn normalized(&self) -> Program {
        Program {
            rules: self.rules.iter().map(Rule::normalized).collect(),
        }
    }

    /// Renders the program in the concrete syntax accepted by the parser.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayProgram<'a> {
        DisplayProgram {
            program: self,
            interner,
        }
    }
}

/// Helper returned by [`Program::display`].
pub struct DisplayProgram<'a> {
    program: &'a Program,
    interner: &'a Interner,
}

impl Rule {
    /// Renders one rule in the concrete syntax (without the trailing
    /// `.`), for plan listings and diagnostics.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayRule<'a> {
        DisplayRule {
            rule: self,
            interner,
        }
    }
}

/// Helper returned by [`Rule::display`].
pub struct DisplayRule<'a> {
    rule: &'a Rule,
    interner: &'a Interner,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_rule(f, self.rule, self.interner)
    }
}

fn fmt_term(
    f: &mut fmt::Formatter<'_>,
    term: &Term,
    rule: &Rule,
    interner: &Interner,
) -> fmt::Result {
    match term {
        Term::Var(v) => write!(f, "{}", rule.var_names[v.index()]),
        Term::Const(c) => write!(f, "{}", c.display(interner)),
    }
}

fn fmt_atom(
    f: &mut fmt::Formatter<'_>,
    atom: &Atom,
    rule: &Rule,
    interner: &Interner,
) -> fmt::Result {
    write!(f, "{}", interner.name(atom.pred))?;
    if !atom.args.is_empty() {
        write!(f, "(")?;
        for (i, t) in atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_term(f, t, rule, interner)?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

fn fmt_rule(f: &mut fmt::Formatter<'_>, rule: &Rule, interner: &Interner) -> fmt::Result {
    for (i, h) in rule.head.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        match h {
            HeadLiteral::Pos(a) => fmt_atom(f, a, rule, interner)?,
            HeadLiteral::Neg(a) => {
                write!(f, "!")?;
                fmt_atom(f, a, rule, interner)?;
            }
            HeadLiteral::Bottom => write!(f, "bottom")?,
        }
    }
    if !rule.body.is_empty() || !rule.forall.is_empty() {
        write!(f, " :- ")?;
        if !rule.forall.is_empty() {
            write!(f, "forall ")?;
            for (i, v) in rule.forall.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", rule.var_names[v.index()])?;
            }
            write!(f, " : ")?;
        }
        for (i, l) in rule.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match l {
                Literal::Pos(a) => fmt_atom(f, a, rule, interner)?,
                Literal::Neg(a) => {
                    write!(f, "!")?;
                    fmt_atom(f, a, rule, interner)?;
                }
                Literal::Eq(s, t) => {
                    fmt_term(f, s, rule, interner)?;
                    write!(f, " = ")?;
                    fmt_term(f, t, rule, interner)?;
                }
                Literal::Neq(s, t) => {
                    fmt_term(f, s, rule, interner)?;
                    write!(f, " != ")?;
                    fmt_term(f, t, rule, interner)?;
                }
                Literal::Choice(left, right) => {
                    write!(f, "choice((")?;
                    for (i, t) in left.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        fmt_term(f, t, rule, interner)?;
                    }
                    write!(f, "), (")?;
                    for (i, t) in right.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        fmt_term(f, t, rule, interner)?;
                    }
                    write!(f, "))")?;
                }
            }
        }
    }
    Ok(())
}

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.program.rules {
            fmt_rule(f, rule, self.interner)?;
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_rule(interner: &mut Interner) -> Rule {
        // T(x, y) :- G(x, z), T(z, y).
        let g = interner.intern("G");
        let t = interner.intern("T");
        let (x, y, z) = (Var(0), Var(1), Var(2));
        Rule {
            head: vec![HeadLiteral::Pos(Atom::new(
                t,
                vec![Term::Var(x), Term::Var(y)],
            ))],
            body: vec![
                Literal::Pos(Atom::new(g, vec![Term::Var(x), Term::Var(z)])),
                Literal::Pos(Atom::new(t, vec![Term::Var(z), Term::Var(y)])),
            ],
            forall: vec![],
            var_names: vec!["x".into(), "y".into(), "z".into()],
        }
    }

    #[test]
    fn head_and_body_vars() {
        let mut i = Interner::new();
        let r = mk_rule(&mut i);
        assert_eq!(r.head_vars(), vec![Var(0), Var(1)]);
        assert_eq!(r.body_vars(), vec![Var(0), Var(1), Var(2)]);
        assert!(r.invented_vars().is_empty());
    }

    #[test]
    fn invented_vars_detected() {
        let mut i = Interner::new();
        let p = i.intern("P");
        let q = i.intern("Q");
        // P(x, n) :- Q(x).   -- n appears only in the head
        let r = Rule {
            head: vec![HeadLiteral::Pos(Atom::new(
                p,
                vec![Term::Var(Var(0)), Term::Var(Var(1))],
            ))],
            body: vec![Literal::Pos(Atom::new(q, vec![Term::Var(Var(0))]))],
            forall: vec![],
            var_names: vec!["x".into(), "n".into()],
        };
        assert_eq!(r.invented_vars(), vec![Var(1)]);
    }

    #[test]
    fn edb_idb_split() {
        let mut i = Interner::new();
        let r = mk_rule(&mut i);
        let p = Program { rules: vec![r] };
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        assert_eq!(p.edb(), vec![g]);
        assert_eq!(p.idb(), vec![t]);
        let schema = p.schema().unwrap();
        assert_eq!(schema.arity(g), Some(2));
        assert_eq!(schema.arity(t), Some(2));
    }

    #[test]
    fn display_roundtrippable_text() {
        let mut i = Interner::new();
        let r = mk_rule(&mut i);
        let p = Program { rules: vec![r] };
        assert_eq!(p.display(&i).to_string(), "T(x, y) :- G(x, z), T(z, y).\n");
    }

    #[test]
    fn program_adom_collects_constants() {
        let mut i = Interner::new();
        let t = i.intern("T");
        let rule = Rule {
            head: vec![HeadLiteral::Pos(Atom::new(
                t,
                vec![Term::Const(Value::Int(0))],
            ))],
            body: vec![Literal::Pos(Atom::new(t, vec![Term::Const(Value::Int(1))]))],
            forall: vec![],
            var_names: vec![],
        };
        let p = Program { rules: vec![rule] };
        assert_eq!(p.adom(), vec![Value::Int(0), Value::Int(1)]);
    }
}

//! Recursive-descent parser for rule programs and fact files.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program   ::= statement*
//! statement ::= head ( ":-" body )? "."
//! head      ::= headlit ( "," headlit )*
//! headlit   ::= "bottom" | "!"? atom
//! body      ::= ( "forall" var ( ","? var )* ":" )? lit ( "," lit )*
//! lit       ::= "!" atom | atom | term ("=" | "!=") term
//! atom      ::= ident ( "(" ( term ( "," term )* )? ")" )?
//! term      ::= ident | intconst | symconst
//! ```
//!
//! Identifiers in *argument position* are variables; identifiers in
//! *predicate position* are relation names. Constants are integers or
//! quoted symbols. This matches the paper's examples once constants are
//! quoted (e.g. the flip-flop program's `T(0)` works verbatim since `0`
//! is an integer constant).

use crate::ast::{Atom, HeadLiteral, Literal, Program, Rule, Term, Var};
use crate::lexer::{lex, LexError, Pos, Token, TokenKind};
use std::fmt;
use unchained_common::{FxHashMap, Instance, Interner, Tuple, Value};

/// A parse error with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem was noticed.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    at: usize,
    interner: &'a mut Interner,
}

/// Per-rule variable scope.
#[derive(Default)]
struct VarScope {
    names: Vec<String>,
    lookup: FxHashMap<String, Var>,
}

impl VarScope {
    fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.lookup.get(name) {
            return v;
        }
        let v = Var(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), v);
        v
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            pos: self.pos(),
        }
    }

    fn parse_term(&mut self, scope: &mut VarScope) -> Result<Term, ParseError> {
        match self.bump() {
            TokenKind::Ident(name) => Ok(Term::Var(scope.var(&name))),
            TokenKind::SymConst(s) => Ok(Term::Const(Value::Sym(self.interner.intern(&s)))),
            TokenKind::IntConst(n) => Ok(Term::Const(Value::Int(n))),
            other => Err(ParseError {
                message: format!("expected term, found {other}"),
                pos: self.tokens[self.at.saturating_sub(1)].pos,
            }),
        }
    }

    fn parse_atom_after_name(
        &mut self,
        name: String,
        scope: &mut VarScope,
    ) -> Result<Atom, ParseError> {
        let pred = self.interner.intern(&name);
        let mut args = Vec::new();
        if self.peek() == &TokenKind::LParen {
            self.bump();
            if self.peek() != &TokenKind::RParen {
                loop {
                    args.push(self.parse_term(scope)?);
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Atom::new(pred, args))
    }

    /// Parses a body literal: negated atom, plain atom, or (in)equality.
    fn parse_body_literal(&mut self, scope: &mut VarScope) -> Result<Literal, ParseError> {
        if self.peek() == &TokenKind::Bang {
            self.bump();
            match self.bump() {
                TokenKind::Ident(name) => {
                    Ok(Literal::Neg(self.parse_atom_after_name(name, scope)?))
                }
                other => Err(self.error(format!("expected atom after `!`, found {other}"))),
            }
        } else {
            match self.bump() {
                TokenKind::Ident(name) if name == "choice" && self.peek() == &TokenKind::LParen => {
                    self.parse_choice(scope)
                }
                TokenKind::Ident(name) => {
                    // Could be an atom, or the left side of an (in)equality
                    // when followed by `=` / `!=`.
                    match self.peek() {
                        TokenKind::Eq => {
                            self.bump();
                            let lhs = Term::Var(scope.var(&name));
                            let rhs = self.parse_term(scope)?;
                            Ok(Literal::Eq(lhs, rhs))
                        }
                        TokenKind::Neq => {
                            self.bump();
                            let lhs = Term::Var(scope.var(&name));
                            let rhs = self.parse_term(scope)?;
                            Ok(Literal::Neq(lhs, rhs))
                        }
                        _ => Ok(Literal::Pos(self.parse_atom_after_name(name, scope)?)),
                    }
                }
                TokenKind::IntConst(n) => {
                    let lhs = Term::Const(Value::Int(n));
                    self.parse_equality_tail(lhs, scope)
                }
                TokenKind::SymConst(s) => {
                    let lhs = Term::Const(Value::Sym(self.interner.intern(&s)));
                    self.parse_equality_tail(lhs, scope)
                }
                other => Err(self.error(format!("expected literal, found {other}"))),
            }
        }
    }

    /// Parses `choice((t1, …),(u1, …))` after the `choice` keyword.
    fn parse_choice(&mut self, scope: &mut VarScope) -> Result<Literal, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let left = self.parse_term_group(scope)?;
        self.expect(&TokenKind::Comma)?;
        let right = self.parse_term_group(scope)?;
        self.expect(&TokenKind::RParen)?;
        Ok(Literal::Choice(left, right))
    }

    /// Parses a parenthesized, possibly empty term group `(t1, …)`.
    fn parse_term_group(&mut self, scope: &mut VarScope) -> Result<Vec<Term>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut terms = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                terms.push(self.parse_term(scope)?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(terms)
    }

    fn parse_equality_tail(
        &mut self,
        lhs: Term,
        scope: &mut VarScope,
    ) -> Result<Literal, ParseError> {
        match self.bump() {
            TokenKind::Eq => Ok(Literal::Eq(lhs, self.parse_term(scope)?)),
            TokenKind::Neq => Ok(Literal::Neq(lhs, self.parse_term(scope)?)),
            other => Err(self.error(format!(
                "expected `=` or `!=` after constant, found {other}"
            ))),
        }
    }

    fn parse_head_literal(&mut self, scope: &mut VarScope) -> Result<HeadLiteral, ParseError> {
        match self.peek().clone() {
            TokenKind::Bottom => {
                self.bump();
                Ok(HeadLiteral::Bottom)
            }
            TokenKind::Bang => {
                self.bump();
                match self.bump() {
                    TokenKind::Ident(name) => {
                        Ok(HeadLiteral::Neg(self.parse_atom_after_name(name, scope)?))
                    }
                    other => Err(self.error(format!("expected atom after `!`, found {other}"))),
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(HeadLiteral::Pos(self.parse_atom_after_name(name, scope)?))
            }
            other => Err(self.error(format!("expected head literal, found {other}"))),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        let mut scope = VarScope::default();
        let mut head = vec![self.parse_head_literal(&mut scope)?];
        while self.peek() == &TokenKind::Comma {
            self.bump();
            head.push(self.parse_head_literal(&mut scope)?);
        }
        let mut body = Vec::new();
        let mut forall = Vec::new();
        if self.peek() == &TokenKind::Arrow {
            self.bump();
            if self.peek() == &TokenKind::Forall {
                self.bump();
                loop {
                    match self.bump() {
                        TokenKind::Ident(name) => forall.push(scope.var(&name)),
                        other => {
                            return Err(self.error(format!(
                                "expected variable in forall prefix, found {other}"
                            )))
                        }
                    }
                    if self.peek() == &TokenKind::Comma {
                        self.bump();
                    }
                    if self.peek() == &TokenKind::Colon {
                        self.bump();
                        break;
                    }
                }
            }
            // An empty body after `:-` is allowed (unconditional rule).
            if self.peek() != &TokenKind::Dot {
                body.push(self.parse_body_literal(&mut scope)?);
                while self.peek() == &TokenKind::Comma {
                    self.bump();
                    body.push(self.parse_body_literal(&mut scope)?);
                }
            }
        }
        self.expect(&TokenKind::Dot)?;
        Ok(Rule {
            head,
            body,
            forall,
            var_names: scope.names,
        })
    }
}

/// Parses a program from source text.
pub fn parse_program(src: &str, interner: &mut Interner) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        at: 0,
        interner,
    };
    let mut rules = Vec::new();
    while parser.peek() != &TokenKind::Eof {
        rules.push(parser.parse_rule()?);
    }
    Ok(Program { rules })
}

/// Parses a fact file: a sequence of ground atoms terminated by `.`,
/// e.g. `G('a','b'). G('b','c').`. Returns the facts as an [`Instance`].
pub fn parse_facts(src: &str, interner: &mut Interner) -> Result<Instance, ParseError> {
    let program = parse_program(src, interner)?;
    let mut instance = Instance::new();
    for rule in &program.rules {
        if !rule.body.is_empty() || rule.head.len() != 1 || !rule.forall.is_empty() {
            return Err(ParseError {
                message: "fact files may only contain ground facts".into(),
                pos: Pos { line: 1, col: 1 },
            });
        }
        match &rule.head[0] {
            HeadLiteral::Pos(atom) => {
                let mut values = Vec::with_capacity(atom.args.len());
                for arg in &atom.args {
                    match arg {
                        Term::Const(v) => values.push(*v),
                        Term::Var(v) => {
                            return Err(ParseError {
                                message: format!(
                                    "fact contains variable `{}`; facts must be ground",
                                    rule.var_names[v.index()]
                                ),
                                pos: Pos { line: 1, col: 1 },
                            })
                        }
                    }
                }
                instance.insert_fact(atom.pred, Tuple::from(values));
            }
            _ => {
                return Err(ParseError {
                    message: "fact files may only contain positive facts".into(),
                    pos: Pos { line: 1, col: 1 },
                })
            }
        }
    }
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{HeadLiteral, Literal};

    fn parse_ok(src: &str) -> (Program, Interner) {
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).expect("parse failed");
        (p, i)
    }

    #[test]
    fn transitive_closure_program() {
        let (p, i) = parse_ok(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).",
        );
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.display(&i).to_string(),
            "T(x, y) :- G(x, y).\nT(x, y) :- G(x, z), T(z, y).\n"
        );
    }

    #[test]
    fn paper_unicode_syntax() {
        let (p, _) = parse_ok("win(x) ← moves(x,y), ¬win(y).");
        assert_eq!(p.rules.len(), 1);
        assert!(matches!(p.rules[0].body[1], Literal::Neg(_)));
    }

    #[test]
    fn negative_heads_and_multi_head() {
        let (p, _) = parse_ok("!G(x,y) :- G(x,y), G(y,x).\nA(x), !B(x) :- C(x).");
        assert!(matches!(p.rules[0].head[0], HeadLiteral::Neg(_)));
        assert_eq!(p.rules[1].head.len(), 2);
    }

    #[test]
    fn bottom_head() {
        let (p, _) = parse_ok("bottom :- done, Q(x,y), !PROJ(x).");
        assert!(matches!(p.rules[0].head[0], HeadLiteral::Bottom));
        assert_eq!(p.rules[0].body.len(), 3);
    }

    #[test]
    fn forall_prefix() {
        let (p, _) = parse_ok("answer(x) :- forall y : P(x), !Q(x,y).");
        assert_eq!(p.rules[0].forall.len(), 1);
        let yname = &p.rules[0].var_names[p.rules[0].forall[0].index()];
        assert_eq!(yname, "y");
    }

    #[test]
    fn zero_arity_and_unconditional() {
        // Example 4.4's `delay ←` rule.
        let (p, _) = parse_ok("delay :- .\ndelay2.");
        assert!(p.rules[0].body.is_empty());
        assert!(p.rules[1].body.is_empty());
        assert_eq!(p.rules[0].head[0].atom().unwrap().arity(), 0);
    }

    #[test]
    fn equalities() {
        let (p, _) = parse_ok("R(x) :- S(x,y), x = y.\nR(x) :- S(x,y), x != 'a'.");
        assert!(matches!(p.rules[0].body[1], Literal::Eq(_, _)));
        assert!(matches!(p.rules[1].body[1], Literal::Neq(_, _)));
    }

    #[test]
    fn constant_on_equality_lhs() {
        let (p, _) = parse_ok("R(x) :- S(x), 1 = x.");
        assert!(matches!(p.rules[0].body[1], Literal::Eq(Term::Const(_), _)));
    }

    #[test]
    fn primed_variables() {
        // The paper's Example 4.3 uses x', y', z'.
        let (p, _) = parse_ok("CT(x,y) :- !T(x,y), old-T(x',y'), !old-T-except-final(x',y').");
        assert_eq!(p.rules[0].body.len(), 3);
        assert!(p.rules[0].var_names.contains(&"x'".to_string()));
    }

    #[test]
    fn variables_scoped_per_rule() {
        let (p, _) = parse_ok("A(x) :- B(x).\nC(x) :- D(x).");
        // Both rules use Var(0) for their own `x`.
        assert_eq!(p.rules[0].var_names, vec!["x"]);
        assert_eq!(p.rules[1].var_names, vec!["x"]);
    }

    #[test]
    fn fact_file() {
        let mut i = Interner::new();
        let inst = parse_facts("G('a','b'). G('b','c'). flag. N(3).", &mut i).unwrap();
        assert_eq!(inst.fact_count(), 4);
        let g = i.get("G").unwrap();
        assert_eq!(inst.relation(g).unwrap().len(), 2);
    }

    #[test]
    fn fact_file_rejects_rules_and_vars() {
        let mut i = Interner::new();
        assert!(parse_facts("A(x) :- B(x).", &mut i).is_err());
        assert!(parse_facts("A(x).", &mut i).is_err());
        assert!(parse_facts("!A(1).", &mut i).is_err());
    }

    #[test]
    fn parse_errors_have_positions() {
        let mut i = Interner::new();
        let err = parse_program("A(x :- B(x).", &mut i).unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        let mut i = Interner::new();
        assert!(parse_program("A(x) :- B(x)", &mut i).is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "T(x, y) :- G(x, z), T(z, y).\nCT(x, y) :- !T(x, y).\n";
        let mut i = Interner::new();
        let p = parse_program(src, &mut i).unwrap();
        let shown = p.display(&i).to_string();
        let mut i2 = Interner::new();
        let p2 = parse_program(&shown, &mut i2).unwrap();
        assert_eq!(p2.display(&i2).to_string(), shown);
    }

    /// `parse(print(p)) == p` structurally, across the whole surface
    /// syntax. Any parsed program is in the parser's canonical variable
    /// numbering, so printing and reparsing must reproduce it exactly
    /// — the invariant the fuzzer's shrinker leans on when it writes
    /// repro files.
    #[test]
    fn parse_print_parse_is_identity() {
        let sources = [
            "T(x, y) :- G(x, z), T(z, y).",
            "CT(x, y) :- V(x), V(y), !T(x, y).",
            "R(0) :- E(0, x), x != -7.",
            "S(x) :- E(x, 'a'), x = 'b'.",
            "P.\nQ(x) :- P, E(x).",
            "bottom :- Conflict(x, x).",
            "!Old(x), New(x) :- Update(x).",
            "Win(x) :- Move(x, y), !Win(y).",
            "Ans(x) :- forall y : E(x), !G(x, y).",
            "Pick(x, y) :- E(x, y), choice((x), (y)).",
            "Fact(3, -4, 'q').",
        ];
        for src in sources {
            let mut i = Interner::new();
            let p = parse_program(src, &mut i).unwrap();
            let reparsed = parse_program(&p.display(&i).to_string(), &mut i)
                .unwrap_or_else(|e| panic!("printed form of {src:?} does not reparse: {e}"));
            assert_eq!(reparsed, p, "round trip changed {src:?}");
        }
    }

    /// A programmatically built rule with unused variable names and
    /// non-canonical numbering round-trips only after normalization.
    #[test]
    fn normalized_rule_roundtrips() {
        use crate::ast::{Atom, HeadLiteral, Literal, Program, Rule, Term, Var};
        let mut i = Interner::new();
        let e = i.intern("E");
        let r = i.intern("R");
        // R(z, x) :- E(z), E(x) — numbered z=2, x=0, with an unused y=1.
        let rule = Rule {
            head: vec![HeadLiteral::Pos(Atom::new(
                r,
                vec![Term::Var(Var(2)), Term::Var(Var(0))],
            ))],
            body: vec![
                Literal::Pos(Atom::new(e, vec![Term::Var(Var(2))])),
                Literal::Pos(Atom::new(e, vec![Term::Var(Var(0))])),
            ],
            forall: vec![],
            var_names: vec!["x".into(), "y".into(), "z".into()],
        };
        let raw = Program { rules: vec![rule] };
        let reparsed = parse_program(&raw.display(&i).to_string(), &mut i).unwrap();
        assert_ne!(reparsed, raw, "denormalized program cannot round-trip");
        let normal = raw.normalized();
        assert_eq!(reparsed, normal);
        let again = parse_program(&normal.display(&i).to_string(), &mut i).unwrap();
        assert_eq!(again, normal);
    }
}

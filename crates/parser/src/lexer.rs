//! Lexer for the concrete rule syntax.
//!
//! The syntax is ASCII-friendly but also accepts the paper's Unicode
//! notation: `←` for `:-`, `¬` for `!`, `∀` for `forall`, `⊥` for
//! `bottom`, and `≠` for `!=`.
//!
//! Comments run from `%` or `//` or `#` to end of line.

use std::fmt;

/// A source position (1-based line and column), for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An identifier: relation name or variable.
    Ident(String),
    /// A quoted symbolic constant: `'paris'` or `"paris"`.
    SymConst(String),
    /// An integer constant.
    IntConst(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-` or `←`
    Arrow,
    /// `!` or `¬` or the keyword `not`
    Bang,
    /// `=`
    Eq,
    /// `!=` or `≠` or `<>`
    Neq,
    /// `:` (separates a `forall` prefix from the body)
    Colon,
    /// keyword `forall` or `∀`
    Forall,
    /// keyword `bottom` or `⊥` or `false`
    Bottom,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::SymConst(s) => write!(f, "constant '{s}'"),
            TokenKind::IntConst(n) => write!(f, "integer {n}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`:-`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Neq => write!(f, "`!=`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Forall => write!(f, "`forall`"),
            TokenKind::Bottom => write!(f, "`bottom`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem was noticed.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '\''
}

/// Tokenizes `src`. The result always ends with an [`TokenKind::Eof`]
/// token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(c) if c.is_whitespace() => {
                    cur.bump();
                }
                Some('%') | Some('#') => {
                    while let Some(c) = cur.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') => {
                    // Only a comment if followed by another '/'.
                    let pos = cur.pos();
                    cur.bump();
                    if cur.eat('/') {
                        while let Some(c) = cur.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        return Err(LexError {
                            message: "unexpected `/` (did you mean `//`?)".into(),
                            pos,
                        });
                    }
                }
                _ => break,
            }
        }
        let pos = cur.pos();
        let Some(c) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                pos,
            });
            return Ok(out);
        };
        let kind = match c {
            '(' => {
                cur.bump();
                TokenKind::LParen
            }
            ')' => {
                cur.bump();
                TokenKind::RParen
            }
            ',' => {
                cur.bump();
                TokenKind::Comma
            }
            '.' => {
                cur.bump();
                TokenKind::Dot
            }
            '=' => {
                cur.bump();
                TokenKind::Eq
            }
            '≠' => {
                cur.bump();
                TokenKind::Neq
            }
            '¬' => {
                cur.bump();
                TokenKind::Bang
            }
            '←' => {
                cur.bump();
                TokenKind::Arrow
            }
            '∀' => {
                cur.bump();
                TokenKind::Forall
            }
            '⊥' => {
                cur.bump();
                TokenKind::Bottom
            }
            ':' => {
                cur.bump();
                if cur.eat('-') {
                    TokenKind::Arrow
                } else {
                    TokenKind::Colon
                }
            }
            '!' => {
                cur.bump();
                if cur.eat('=') {
                    TokenKind::Neq
                } else {
                    TokenKind::Bang
                }
            }
            '<' => {
                cur.bump();
                if cur.eat('>') {
                    TokenKind::Neq
                } else {
                    return Err(LexError {
                        message: "unexpected `<` (did you mean `<>`?)".into(),
                        pos,
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                cur.bump();
                let mut s = String::new();
                loop {
                    match cur.bump() {
                        Some(c) if c == quote => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                message: "unterminated quoted constant".into(),
                                pos,
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                TokenKind::SymConst(s)
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(cur.bump().unwrap());
                if c == '-' && !cur.peek().is_some_and(|d| d.is_ascii_digit()) {
                    return Err(LexError {
                        message: "expected digits after `-`".into(),
                        pos,
                    });
                }
                while let Some(d) = cur.peek() {
                    if d.is_ascii_digit() {
                        s.push(cur.bump().unwrap());
                    } else {
                        break;
                    }
                }
                let n: i64 = s.parse().map_err(|_| LexError {
                    message: format!("integer out of range: {s}"),
                    pos,
                })?;
                TokenKind::IntConst(n)
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                while let Some(d) = cur.peek() {
                    if is_ident_continue(d) {
                        s.push(cur.bump().unwrap());
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "not" => TokenKind::Bang,
                    "forall" => TokenKind::Forall,
                    "bottom" | "false" => TokenKind::Bottom,
                    _ => TokenKind::Ident(s),
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    pos,
                })
            }
        };
        out.push(Token { kind, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_rule() {
        use TokenKind::*;
        assert_eq!(
            kinds("T(x,y) :- G(x,y)."),
            vec![
                Ident("T".into()),
                LParen,
                Ident("x".into()),
                Comma,
                Ident("y".into()),
                RParen,
                Arrow,
                Ident("G".into()),
                LParen,
                Ident("x".into()),
                Comma,
                Ident("y".into()),
                RParen,
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn unicode_aliases() {
        use TokenKind::*;
        assert_eq!(
            kinds("win(x) ← moves(x,y), ¬win(y)."),
            kinds("win(x) :- moves(x,y), !win(y).")
        );
        assert_eq!(kinds("⊥ :- A."), kinds("bottom :- A."));
        assert_eq!(
            kinds("x ≠ y"),
            vec![Ident("x".into()), Neq, Ident("y".into()), Eof]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(kinds("% hello\nA. // trailing\n# more\nB."), kinds("A. B."));
    }

    #[test]
    fn constants() {
        use TokenKind::*;
        assert_eq!(
            kinds("R('a', \"b\", 42, -7)"),
            vec![
                Ident("R".into()),
                LParen,
                SymConst("a".into()),
                Comma,
                SymConst("b".into()),
                Comma,
                IntConst(42),
                Comma,
                IntConst(-7),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn not_keyword_is_negation() {
        assert_eq!(kinds("not A"), kinds("!A"));
    }

    #[test]
    fn neq_spellings_agree() {
        assert_eq!(kinds("x != y"), kinds("x <> y"));
    }

    #[test]
    fn positions_reported() {
        let toks = lex("A.\n  B.").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[2].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("- x").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn forall_and_colon() {
        use TokenKind::*;
        assert_eq!(
            kinds("ans(x) :- forall y : P(x)."),
            vec![
                Ident("ans".into()),
                LParen,
                Ident("x".into()),
                RParen,
                Arrow,
                Forall,
                Ident("y".into()),
                Colon,
                Ident("P".into()),
                LParen,
                Ident("x".into()),
                RParen,
                Dot,
                Eof
            ]
        );
    }
}

//! Theorem 4.7: on **ordered** databases (with explicit min and max),
//! even the weak semipositive fragment of Datalog¬ captures db-ptime.
//! The showcase query is *evenness* — `|R| even?` — which no
//! deterministic generic language can express without order
//! (Section 4.4's data-independence argument).
//!
//! This example evaluates the same semipositive parity program under
//! the stratified, well-founded and inflationary semantics (Theorem 4.7
//! says they coincide here) and checks the answers against a direct
//! count.
//!
//! ```sh
//! cargo run --example ordered_parity
//! ```

use unchained::common::{Interner, Tuple};
use unchained::core::{inflationary, stratified, wellfounded, EvalOptions};
use unchained::harness::ordered::evenness_input;
use unchained::harness::programs::EVEN_SEMIPOSITIVE;
use unchained::parser::{classify, parse_program};

fn main() {
    let mut interner = Interner::new();
    let program = parse_program(EVEN_SEMIPOSITIVE, &mut interner).expect("parses");
    println!("program class: {}\n", classify(&program));
    let even = interner.get("even").unwrap();

    println!("|R| | expected | stratified | inflationary | well-founded");
    println!("----+----------+------------+--------------+-------------");
    for k in 0..=6usize {
        let members: Vec<i64> = (0..k as i64).collect();
        let input = evenness_input(&mut interner, "R", 12, &members);
        let expected = k % 2 == 0;

        let s = stratified::eval(&program, &input, EvalOptions::default())
            .unwrap()
            .instance
            .contains_fact(even, &Tuple::from([]));
        let i = inflationary::eval(&program, &input, EvalOptions::default())
            .unwrap()
            .instance
            .contains_fact(even, &Tuple::from([]));
        let w = wellfounded::eval(&program, &input, EvalOptions::default())
            .unwrap()
            .truth(even, &Tuple::from([]))
            == wellfounded::Truth::True;
        println!("  {k} | {expected:8} | {s:10} | {i:12} | {w}");
        assert_eq!(expected, s);
        assert_eq!(expected, i);
        assert_eq!(expected, w);
    }
    println!("\nall three engines agree with the parity oracle (Theorem 4.7).");
}

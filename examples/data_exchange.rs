//! Distributed data exchange — the fourth adoption domain in the
//! paper's abstract ("distributed data exchange"), modeled after
//! Webdamlog (Section 6): autonomous peers run local forward-chaining
//! rules and exchange facts until the network quiesces.
//!
//! Scenario: three airlines each know their own flights; an alliance
//! hub collects reachability claims, and each airline learns which of
//! its airports can reach which alliance destinations — "think global,
//! act local" ([16]).
//!
//! ```sh
//! cargo run --example data_exchange
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::exchange::{Network, Peer};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    // Every airline: local reachability over own flights plus imported
    // alliance-wide reachability.
    let airline_rules = parse_program(
        "reach(x,y) :- flight(x,y).\n\
         reach(x,y) :- reach(x,z), reach(z,y).\n\
         reach(x,y) :- alliance(x,y).",
        &mut interner,
    )
    .expect("airline rules parse");
    // The hub re-broadcasts everything it hears.
    let hub_rules =
        parse_program("alliance(x,y) :- heard(x,y).", &mut interner).expect("hub rules parse");

    let flight = interner.get("flight").unwrap();
    let reach = interner.get("reach").unwrap();
    let alliance = interner.get("alliance").unwrap();
    let heard = interner.get("heard").unwrap();

    let mut network = Network::new();
    let fleets: [(&str, &[(&str, &str)]); 3] = [
        ("rustair", &[("sd", "sfo"), ("sfo", "sea")]),
        ("ferrisjet", &[("sea", "jfk")]),
        ("cratewings", &[("jfk", "cdg"), ("cdg", "nce")]),
    ];
    for (name, routes) in fleets {
        let mut db = Instance::new();
        for (a, b) in routes {
            let va = Value::sym(&mut interner, a);
            let vb = Value::sym(&mut interner, b);
            db.insert_fact(flight, Tuple::from([va, vb]));
        }
        network.add_peer(Peer::new(name, airline_rules.clone(), db).exporting(reach, "hub", heard));
    }
    let mut hub = Peer::new("hub", hub_rules, Instance::new());
    for (name, _) in fleets {
        hub = hub.exporting(alliance, name, alliance);
    }
    network.add_peer(hub);

    let report = network.run_to_convergence(50).expect("network converges");
    println!(
        "converged after {} rounds ({} facts delivered, {} local stages)",
        report.rounds, report.delivered, report.local_stages
    );

    // rustair now knows it can reach Nice, although no single airline
    // flies the whole route.
    let rustair = network.peer("rustair").unwrap();
    let sd = Value::sym(&mut interner, "sd");
    let nce = Value::sym(&mut interner, "nce");
    let knows = rustair
        .database
        .contains_fact(reach, &Tuple::from([sd, nce]));
    println!("rustair knows sd → nce: {knows}");
    assert!(knows);

    // All peers agree on the global reachability relation.
    let view = network.global_view();
    println!(
        "alliance-wide reach relation: {} pairs",
        view.relation(reach).unwrap().len()
    );
}

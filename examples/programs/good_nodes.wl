% Example 4.4 as a while-language *fixpoint* program:
% good = the nodes not reachable from a cycle.
% Run: unchained eval --semantics whilelang good_nodes.wl <facts.dl>
while change do
  good += { x | forall y (G(y,x) -> good(y)) };
end

//! Stable models vs. the well-founded semantics (Section 3.3).
//!
//! The win-move program on the paper's instance `K` is the classic
//! showcase: the drawn cycle `a → b → c → a` makes the program
//! *incoherent* under stable semantics (no stable model at all), while
//! the well-founded semantics still answers — with those positions
//! marked unknown. On a 4-cycle, by contrast, there are two stable
//! models (the two alternating kernels) and the well-founded semantics
//! is fully undecided.
//!
//! ```sh
//! cargo run --example stable_models
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::stable::{stable_models, StableOptions};
use unchained::core::{wellfounded, EvalOptions};
use unchained::harness::generators::paper_game;
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut interner).expect("parses");
    let win = interner.get("win").unwrap();
    let moves = interner.get("moves").unwrap();

    // 1. The paper's instance: WF answers, stable semantics does not.
    let input = paper_game(&mut interner, "moves");
    let wf = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
    let models = stable_models(&program, &input, StableOptions::default()).unwrap();
    println!("paper instance K:");
    println!(
        "  well-founded: {} unknown facts (a, b, c drawn)",
        wf.unknown_facts().len()
    );
    println!(
        "  stable models: {} — the program is incoherent here",
        models.len()
    );
    assert!(models.is_empty());

    // 2. A 4-cycle: two stable models, WF fully unknown.
    let mut cycle = Instance::new();
    for k in 0..4i64 {
        cycle.insert_fact(moves, Tuple::from([Value::Int(k), Value::Int((k + 1) % 4)]));
    }
    let wf = wellfounded::eval(&program, &cycle, EvalOptions::default()).unwrap();
    let models = stable_models(&program, &cycle, StableOptions::default()).unwrap();
    println!("\n4-cycle:");
    println!(
        "  well-founded: {} unknown facts (all four)",
        wf.unknown_facts().len()
    );
    println!("  stable models: {}", models.len());
    for (idx, m) in models.iter().enumerate() {
        let wins: Vec<String> = m
            .relation(win)
            .unwrap()
            .sorted()
            .iter()
            .map(|t| t.display(&interner).to_string())
            .collect();
        println!("    model #{idx}: win{}", wins.join(" win"));
    }
    assert_eq!(models.len(), 2);

    // 3. Every stable model lies between WF-true and WF-possible.
    for m in &models {
        for t in wf
            .true_facts
            .relation(win)
            .into_iter()
            .flat_map(|r| r.iter())
        {
            assert!(m.contains_fact(win, t));
        }
        for t in m.relation(win).unwrap().iter() {
            assert!(wf.possible_facts.contains_fact(win, t));
        }
    }
    println!("\nall stable models lie inside the well-founded interval.");
}

//! Quickstart: parse a Datalog program, evaluate it, inspect the
//! answer.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{seminaive, EvalOptions};
use unchained::parser::{classify, parse_program};

fn main() {
    // 1. One interner per session: it owns relation and constant names.
    let mut interner = Interner::new();

    // 2. Parse the paper's Section 3.1 program: transitive closure.
    let program = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- G(x,z), T(z,y).",
        &mut interner,
    )
    .expect("program parses");
    println!("language class: {}", classify(&program));

    // 3. Build an input instance: a small flight network.
    let g = interner.get("G").expect("G was interned by the parser");
    let mut input = Instance::new();
    for (from, to) in [
        ("sd", "sfo"),
        ("sfo", "jfk"),
        ("jfk", "cdg"),
        ("cdg", "nce"),
    ] {
        let from = Value::sym(&mut interner, from);
        let to = Value::sym(&mut interner, to);
        input.insert_fact(g, Tuple::from([from, to]));
    }

    // 4. Evaluate (semi-naive bottom-up) and print the reachable pairs.
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default())
        .expect("evaluation succeeds");
    println!("fixpoint reached after {} rounds", run.stages);
    println!("{}", run.answer(&program).display(&interner));
}

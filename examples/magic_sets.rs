//! Magic-sets rewriting: goal-directed evaluation of positive Datalog.
//!
//! Section 3.1 notes that most deductive-database optimization was
//! developed around Datalog; magic sets is the canonical technique.
//! This example rewrites the transitive-closure program for a
//! single-source query and shows how much less the rewritten program
//! derives.
//!
//! ```sh
//! cargo run --example magic_sets
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::magic::{compare_with_full, magic_rewrite, QueryPattern};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- G(x,z), T(z,y).",
        &mut interner,
    )
    .expect("parses");
    let g = interner.get("G").unwrap();
    let t = interner.get("T").unwrap();

    // Many disjoint chains; the query touches only one of them.
    let mut input = Instance::new();
    for chain in 0..20i64 {
        for k in 0..30i64 {
            let base = chain * 100;
            input.insert_fact(
                g,
                Tuple::from([Value::Int(base + k), Value::Int(base + k + 1)]),
            );
        }
    }
    println!("input: {} edges in 20 disjoint chains", input.fact_count());

    // Query: T(0, y) — reachability from node 0 only.
    let query = QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
    let rewritten = magic_rewrite(&program, &query, &mut interner).expect("rewrites");
    println!(
        "\nrewritten program:\n{}",
        rewritten.program.display(&interner)
    );
    println!("seed facts:\n{}", rewritten.seeds.display(&interner));

    let (answer, stats) =
        compare_with_full(&program, &query, &input, &mut interner).expect("evaluates");
    println!("answer size: {} (nodes reachable from 0)", answer.len());
    println!(
        "facts derived: full evaluation {}, magic evaluation {} ({}x fewer)",
        stats.full_facts,
        stats.magic_facts,
        stats.full_facts / stats.magic_facts.max(1)
    );
    assert_eq!(answer.len(), 30);
    assert!(stats.magic_facts * 5 < stats.full_facts);
}

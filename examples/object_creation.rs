//! Value invention as object creation (Section 4.3 / IQL [12]).
//!
//! "Value invention also arises in the object-oriented context, where
//! object creation is a very useful and common feature." This example
//! normalizes a flat edge relation into an object-oriented shape:
//! every edge gets a fresh object identity carrying its endpoints and a
//! reverse link, and path objects are created by joining edge objects —
//! each invention happening exactly once per witnessing instantiation.
//!
//! ```sh
//! cargo run --example object_creation
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{invention, EvalOptions};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program = parse_program(
        "% Create an object per edge (o is invented), with accessors.
         EdgeObj(o, x, y) :- G(x,y).
         src(o, x) :- EdgeObj(o, x, y).
         dst(o, y) :- EdgeObj(o, x, y).
         % Create an object per composable pair of edge objects.
         PathObj(p, o1, o2) :- EdgeObj(o1, x, y), EdgeObj(o2, y, z).
         % Derived, invention-free view: endpoints of 2-paths.
         twostep(x, z) :- PathObj(p, o1, o2), src(o1, x), dst(o2, z).",
        &mut interner,
    )
    .expect("parses");
    let g = interner.get("G").unwrap();

    let mut input = Instance::new();
    for (a, b) in [(1i64, 2), (2, 3), (3, 4), (2, 4)] {
        input.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }

    let run = invention::eval(&program, &input, EvalOptions::default()).expect("eval");
    let edge_obj = interner.get("EdgeObj").unwrap();
    let path_obj = interner.get("PathObj").unwrap();
    let twostep = interner.get("twostep").unwrap();

    println!("invented {} object identities", run.invented);
    println!(
        "edge objects: {}",
        run.instance.relation(edge_obj).unwrap().len()
    );
    println!(
        "path objects: {}",
        run.instance.relation(path_obj).unwrap().len()
    );
    println!("two-step endpoint pairs:");
    print!(
        "{}",
        run.instance.project_schema([twostep]).display(&interner)
    );

    // 4 edges → 4 edge objects; composable pairs: (1,2)(2,3), (1,2)(2,4),
    // (2,3)(3,4) → 3 path objects. Total inventions: 7.
    assert_eq!(run.instance.relation(edge_obj).unwrap().len(), 4);
    assert_eq!(run.instance.relation(path_obj).unwrap().len(), 3);
    assert_eq!(run.invented, 7);

    // The safety restriction (Section 4.3): object relations contain
    // invented values, the derived view does not — so `twostep` is a
    // deterministic query, independent of which identities were chosen.
    assert!(!run.is_safe_answer(edge_obj));
    assert!(run.is_safe_answer(twostep));
    println!("twostep is invention-free (safe, deterministic): ok");
}

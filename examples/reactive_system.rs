//! A data-driven reactive system in temporal (Dedalus-style) Datalog —
//! the abstract's fourth adoption domain, Section 6's "Datalog in time
//! and space".
//!
//! Scenario: a traffic-light controller. The light cycles
//! green → yellow → red → green; a pedestrian **request** (a fact that
//! arrives at some timestep) forces the next green phase to be
//! shortened. Deductive rules derive the *signal* shown within a step;
//! inductive rules advance the *phase* to the next step.
//!
//! ```sh
//! cargo run --example reactive_system
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::exchange::temporal::{run_temporal, TemporalEnd, TemporalProgram};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    // Within a timestep: derive the displayed signal from the phase,
    // and detect the shortcut condition (green phase + pending request).
    let deductive = parse_program(
        "show('walk') :- phase('red').\n\
         show('stop') :- phase('green').\n\
         show('stop') :- phase('yellow').\n\
         shortcut :- phase('green'), request.",
        &mut interner,
    )
    .expect("deductive rules parse");
    // Across timesteps: the phase machine advances along the cycle
    // graph, except that a shortcut jumps straight to yellow. The cycle
    // graph itself persists; the request does not (it is consumed).
    let inductive = parse_program(
        "next(x,y) :- next(x,y).\n\
         phase(y) :- phase(x), next(x,y), !shortcut.\n\
         phase('yellow') :- shortcut.",
        &mut interner,
    )
    .expect("inductive rules parse");

    let phase = interner.get("phase").unwrap();
    let show = interner.get("show").unwrap();
    let request = interner.get("request").unwrap();
    let name = |i: &mut Interner, s: &str| Value::sym(i, s);
    let green = name(&mut interner, "green");
    let walk = name(&mut interner, "walk");

    // Without a request: the light cycles with period 4.
    let next = interner.get("next").unwrap();
    let mut initial = Instance::new();
    initial.insert_fact(phase, Tuple::from([green]));
    for (a, b) in [
        ("green", "green2"),
        ("green2", "yellow"),
        ("yellow", "red"),
        ("red", "green"),
    ] {
        let (va, vb) = (name(&mut interner, a), name(&mut interner, b));
        initial.insert_fact(next, Tuple::from([va, vb]));
    }
    let program = TemporalProgram {
        deductive,
        inductive,
    };
    let run = run_temporal(&program, &initial, 50).expect("runs");
    println!("free-running controller:");
    for (t, state) in run.trace.iter().enumerate().take(6) {
        let phases: Vec<String> = state
            .relation(phase)
            .map(|r| {
                r.sorted()
                    .iter()
                    .map(|t| t.display(&interner).to_string())
                    .collect()
            })
            .unwrap_or_default();
        println!("  t={t}: phase{}", phases.join(" phase"));
    }
    println!("  end: {:?}", run.end);
    assert!(matches!(run.end, TemporalEnd::Cycle { period: 4, .. }));

    // With a pedestrian request pending at t=0: green skips its second
    // beat, so "walk" (red) arrives one step earlier.
    let mut with_request = initial.clone();
    with_request.insert_fact(request, Tuple::from([]));
    // The request is not persisted: it is consumed after one step.
    let run2 = run_temporal(&program, &with_request, 50).expect("runs");
    let first_walk = |run: &unchained::exchange::temporal::TemporalRun| {
        run.trace
            .iter()
            .position(|s| s.contains_fact(show, &Tuple::from([walk])))
    };
    let free = first_walk(&run).expect("free-running reaches walk");
    let requested = first_walk(&run2).expect("requested run reaches walk");
    println!("\nfirst 'walk' signal: free-running t={free}, with request t={requested}");
    assert!(requested < free, "the request must shorten the green phase");
}

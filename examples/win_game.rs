//! Example 3.2 of the paper: the win-move game under the well-founded
//! (3-valued) semantics, contrasted with the inflationary reading.
//!
//! The program is the classic one-rule unstratifiable query
//!
//! ```text
//! win(x) ← moves(x,y), ¬win(y)
//! ```
//!
//! On the paper's instance `K` the well-founded model answers exactly:
//! `win(d)`, `win(f)` true; `win(e)`, `win(g)` false; `win(a)`,
//! `win(b)`, `win(c)` unknown (drawn positions).
//!
//! ```sh
//! cargo run --example win_game
//! ```

use unchained::common::{Interner, Tuple, Value};
use unchained::core::{inflationary, wellfounded, EvalOptions};
use unchained::harness::generators::paper_game;
use unchained::harness::oracles::{solve_game, GameValue};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program =
        parse_program("win(x) :- moves(x,y), !win(y).", &mut interner).expect("program parses");
    let input = paper_game(&mut interner, "moves");
    let moves = interner.get("moves").unwrap();
    let win = interner.get("win").unwrap();

    // Well-founded: 3-valued model via the alternating fixpoint.
    let model = wellfounded::eval(&program, &input, EvalOptions::default()).expect("wf eval");
    println!("well-founded model ({} alternating rounds):", model.rounds);
    for name in ["a", "b", "c", "d", "e", "f", "g"] {
        let v = Value::sym(&mut interner, name);
        let truth = model.truth(win, &Tuple::from([v]));
        println!("  win({name}) = {truth:?}");
    }

    // Cross-check against direct backward-induction game solving.
    let solution = solve_game(&input, moves);
    let agreement = solution.iter().all(|(&state, &value)| {
        let t = model.truth(win, &Tuple::from([state]));
        matches!(
            (value, t),
            (GameValue::Win, wellfounded::Truth::True)
                | (GameValue::Lose, wellfounded::Truth::False)
                | (GameValue::Draw, wellfounded::Truth::Unknown)
        )
    });
    println!("matches the game-theoretic oracle: {agreement}");

    // The inflationary reading of the same program is 2-valued and
    // different: it *overestimates* win (every state with a move wins at
    // stage 1 unless refuted later — facts are never retracted).
    let run = inflationary::eval(&program, &input, EvalOptions::default()).expect("infl eval");
    let inflationary_wins: Vec<String> = run
        .instance
        .relation(win)
        .unwrap()
        .sorted()
        .iter()
        .map(|t| t.display(&interner).to_string())
        .collect();
    println!(
        "inflationary win (overestimate): {}",
        inflationary_wins.join(" ")
    );

    let _ = interner;
}

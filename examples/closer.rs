//! Example 4.1 of the paper: the `closer` program, the signature trick
//! of inflationary evaluation — *the stage at which a fact is derived
//! carries information* (here: shortest-path distance).
//!
//! ```text
//! T(x,y)              ← G(x,y)
//! T(x,y)              ← T(x,z), G(z,y)
//! closer(x,y,x',y')   ← T(x,y), ¬T(x',y')
//! ```
//!
//! `T(x,y)` first appears at stage `d(x,y)`, so `closer(x,y,x',y')` is
//! derived exactly when `d(x,y) < d(x',y')`. (The paper's prose states
//! `≤`, but its own stage argument — and the program — give the strict
//! comparison; see EXPERIMENTS.md.)
//!
//! ```sh
//! cargo run --example closer
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{inflationary, EvalOptions};
use unchained::harness::oracles::distances;
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- T(x,z), G(z,y).\n\
         closer(x,y,xp,yp) :- T(x,y), !T(xp,yp).",
        &mut interner,
    )
    .expect("parses");
    let g = interner.get("G").unwrap();
    let closer = interner.get("closer").unwrap();

    // A commuter map: hub-and-spoke with a shortcut.
    let mut input = Instance::new();
    let v = Value::Int;
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 3)] {
        input.insert_fact(g, Tuple::from([v(a), v(b)]));
    }

    let run = inflationary::eval(&program, &input, EvalOptions::default()).expect("eval");
    println!("fixpoint after {} stages", run.stages);
    let rel = run.instance.relation(closer).unwrap();
    println!("|closer| = {}", rel.len());

    // Spot-check against BFS distances.
    let dist = distances(&input, g);
    let d = |a: i64, b: i64| dist.get(&(v(a), v(b))).copied().unwrap_or(u64::MAX);
    for (x, y, xp, yp) in [(0, 3, 0, 4), (0, 4, 0, 3), (0, 1, 4, 0)] {
        let derived = rel.contains(&Tuple::from([v(x), v(y), v(xp), v(yp)]));
        println!(
            "closer({x},{y} | {xp},{yp}): derived={derived}  (d = {} vs {})",
            d(x, y),
            d(xp, yp)
        );
        assert_eq!(derived, d(x, y) < d(xp, yp));
    }

    // Exhaustive agreement with the oracle.
    let dom = input.adom_sorted();
    let mut checked = 0;
    for &a in &dom {
        for &b in &dom {
            for &c in &dom {
                for &e in &dom {
                    let (Value::Int(a), Value::Int(b), Value::Int(c), Value::Int(e)) = (a, b, c, e)
                    else {
                        continue;
                    };
                    let derived = rel.contains(&Tuple::from([v(a), v(b), v(c), v(e)]));
                    assert_eq!(derived, d(a, b) < d(c, e));
                    checked += 1;
                }
            }
        }
    }
    println!("verified all {checked} quadruples against the BFS oracle.");
}

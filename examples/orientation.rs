//! Section 5.1's nondeterministic orientation program:
//!
//! ```text
//! ¬G(x,y) ← G(x,y), G(y,x)
//! ```
//!
//! With the nondeterministic one-instantiation-at-a-time semantics, the
//! program computes *one of several possible orientations* of the graph.
//! This example runs it with different seeds, exhaustively enumerates
//! the effect relation `eff(P)` (Definition 5.2), and computes the
//! `poss` / `cert` readings of Definition 5.10.
//!
//! ```sh
//! cargo run --example orientation
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::EvalOptions;
use unchained::harness::oracles::is_valid_orientation;
use unchained::nondet::{effect, poss_cert, run_once, EffOptions, NondetProgram, RandomChooser};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut interner).expect("parses");
    let g = interner.get("G").unwrap();

    // A little road network with three two-way streets and one one-way.
    let mut input = Instance::new();
    let v = |i: &mut Interner, s: &str| Value::sym(i, s);
    let pairs = [("a", "b"), ("b", "c"), ("c", "a")];
    for (x, y) in pairs {
        let (vx, vy) = (v(&mut interner, x), v(&mut interner, y));
        input.insert_fact(g, Tuple::from([vx, vy]));
        input.insert_fact(g, Tuple::from([vy, vx]));
    }
    let (vd, va) = (v(&mut interner, "d"), v(&mut interner, "a"));
    input.insert_fact(g, Tuple::from([vd, va])); // one-way d → a
    let original = input.relation(g).unwrap().clone();

    let compiled = NondetProgram::compile(&program, false).expect("compiles");

    // A few seeded runs: each yields some valid orientation.
    for seed in 0..3u64 {
        let mut chooser = RandomChooser::seeded(seed);
        let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default())
            .expect("run terminates");
        let oriented = run.instance.relation(g).unwrap();
        println!(
            "seed {seed}: {} edges kept, valid orientation: {}",
            oriented.len(),
            is_valid_orientation(&original, oriented)
        );
    }

    // The whole effect relation: 2 choices per two-way street.
    let effects = effect(&compiled, &input, EffOptions::default()).expect("eff");
    println!(
        "eff(P) holds {} terminal instances (expected 2^3 = 8)",
        effects.len()
    );

    // poss = edges kept in SOME orientation; cert = in EVERY one.
    let pc = poss_cert(&compiled, &input, EffOptions::default()).expect("poss/cert");
    println!(
        "poss keeps {} edges (all of them), cert keeps {} (only the one-way street):",
        pc.poss.relation(g).unwrap().len(),
        pc.cert.relation(g).unwrap().len()
    );
    print!("{}", pc.cert.display(&interner));
}

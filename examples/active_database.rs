//! Datalog¬¬ as an active-database rule language.
//!
//! The paper's Section 7 notes that forward-chaining rule languages
//! with updates "remain common in … active databases, production
//! systems, data-driven workflows". This example uses Datalog¬¬'s
//! update semantics (input relations in rule heads, negative heads as
//! deletions) for a classic active-rule task: **referential-integrity
//! repair by cascading delete**.
//!
//! Schema: `emp(e, d)` (employee in department), `dept(d)`,
//! `assigned(e, p)` (employee on project). Deleting departments (the
//! `closed(d)` trigger relation) must cascade: employees of a closed
//! department are removed, and their project assignments with them.
//!
//! ```sh
//! cargo run --example active_database
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{noninflationary, EvalOptions};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    // Cascading-delete rules. Each rule is an ECA-style active rule:
    // the body is the event/condition, the negative head is the action.
    let program = parse_program(
        "!dept(d) :- closed(d).\n\
         !emp(e, d) :- emp(e, d), closed(d).\n\
         !assigned(e, p) :- assigned(e, p), emp(e, d), closed(d).",
        &mut interner,
    )
    .expect("parses");

    let dept = interner.get("dept").unwrap();
    let emp = interner.get("emp").unwrap();
    let assigned = interner.get("assigned").unwrap();
    let closed = interner.get("closed").unwrap();

    let mut input = Instance::new();
    let sym = |i: &mut Interner, s: &str| Value::sym(i, s);
    for d in ["sales", "research", "ops"] {
        let v = sym(&mut interner, d);
        input.insert_fact(dept, Tuple::from([v]));
    }
    for (e, d) in [
        ("ann", "sales"),
        ("bob", "sales"),
        ("cyn", "research"),
        ("dan", "ops"),
    ] {
        let (ve, vd) = (sym(&mut interner, e), sym(&mut interner, d));
        input.insert_fact(emp, Tuple::from([ve, vd]));
    }
    for (e, p) in [("ann", "p1"), ("bob", "p1"), ("cyn", "p2"), ("dan", "p3")] {
        let (ve, vp) = (sym(&mut interner, e), sym(&mut interner, p));
        input.insert_fact(assigned, Tuple::from([ve, vp]));
    }
    // The triggering update: sales is closed.
    let vsales = sym(&mut interner, "sales");
    input.insert_fact(closed, Tuple::from([vsales]));

    println!("before:\n{}", input.display(&interner));

    let run = noninflationary::eval(
        &program,
        &input,
        noninflationary::ConflictPolicy::PreferNegative,
        EvalOptions::default(),
    )
    .expect("rules quiesce");

    println!(
        "after {} firing stages:\n{}",
        run.stages,
        run.instance.display(&interner)
    );

    // Integrity restored: no employee references a closed department,
    // no assignment references a removed employee.
    let emps = run.instance.relation(emp).unwrap();
    let assigns = run.instance.relation(assigned).unwrap();
    assert!(emps.iter().all(|t| t[1] != vsales));
    assert_eq!(emps.len(), 2);
    assert_eq!(assigns.len(), 2);
    println!("referential integrity restored.");
}

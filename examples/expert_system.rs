//! A production-system / expert-system style diagnostic rule base,
//! fired one instantiation at a time.
//!
//! The paper's Section 5 argues that "nondeterminism has long been
//! present in expert systems and production systems (OPS5, KEE)": the
//! recognize–act cycle picks *one* applicable rule instantiation per
//! step. The `unchained_nondet` engine implements exactly that regime;
//! this example runs a small fault-diagnosis rule base under it and
//! shows that (a) a deterministic rule base converges to the same
//! conclusions under any conflict-resolution strategy, and (b) a rule
//! base with a genuine choice (which spare part to allocate) yields
//! different, individually consistent outcomes per strategy.
//!
//! ```sh
//! cargo run --example expert_system
//! ```

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::EvalOptions;
use unchained::nondet::{run_once, FirstChooser, NondetProgram, RandomChooser};
use unchained::parser::parse_program;

fn main() {
    let mut interner = Interner::new();
    // Diagnosis rules (monotone), plus a repair-allocation rule using
    // the choice operator: each failing machine gets exactly one spare.
    let program = parse_program(
        "suspect(m) :- reports-noise(m).\n\
         suspect(m) :- reports-heat(m).\n\
         failing(m) :- suspect(m), error-count(m, n), threshold(n).\n\
         allocate(m, s) :- failing(m), spare(s), choice((m),(s)), choice((s),(m)).",
        &mut interner,
    )
    .expect("rule base parses");

    let sym = |i: &mut Interner, s: &str| Value::sym(i, s);
    let reports_noise = interner.get("reports-noise").unwrap();
    let reports_heat = interner.get("reports-heat").unwrap();
    let error_count = interner.get("error-count").unwrap();
    let threshold = interner.get("threshold").unwrap();
    let spare = interner.get("spare").unwrap();
    let allocate = interner.get("allocate").unwrap();
    let failing = interner.get("failing").unwrap();

    let mut wm = Instance::new(); // working memory
    let m1 = sym(&mut interner, "press-1");
    let m2 = sym(&mut interner, "lathe-2");
    let m3 = sym(&mut interner, "mill-3");
    wm.insert_fact(reports_noise, Tuple::from([m1]));
    wm.insert_fact(reports_heat, Tuple::from([m2]));
    wm.insert_fact(reports_heat, Tuple::from([m3]));
    for (m, n) in [(m1, 9), (m2, 9), (m3, 2)] {
        wm.insert_fact(error_count, Tuple::from([m, Value::Int(n)]));
    }
    wm.insert_fact(threshold, Tuple::from([Value::Int(9)]));
    for s in ["spare-a", "spare-b", "spare-c"] {
        let v = sym(&mut interner, s);
        wm.insert_fact(spare, Tuple::from([v]));
    }

    let compiled = NondetProgram::compile(&program, false).expect("compiles");

    // Strategy 1: textual order (OPS5's default-ish determinism).
    let mut first = FirstChooser;
    let run = run_once(&compiled, &wm, &mut first, EvalOptions::default()).expect("quiesces");
    println!("— recognize–act with textual-order conflict resolution —");
    println!(
        "{}",
        run.instance
            .project_schema([failing, allocate])
            .display(&interner)
    );

    // Strategy 2: random conflict resolution, several seeds.
    println!("— random conflict resolution —");
    for seed in 0..3u64 {
        let mut chooser = RandomChooser::seeded(seed);
        let run = run_once(&compiled, &wm, &mut chooser, EvalOptions::default()).expect("quiesces");
        let failing_set = run.instance.relation(failing).unwrap();
        let allocations = run.instance.relation(allocate).unwrap();
        // The *diagnosis* is strategy-independent (monotone rules)...
        assert_eq!(failing_set.len(), 2, "press-1 and lathe-2 fail");
        // ...while the *allocation* varies but is always a matching.
        assert_eq!(allocations.len(), 2);
        let mut spares = std::collections::BTreeSet::new();
        for t in allocations.iter() {
            assert!(spares.insert(t[1]), "spare allocated twice");
        }
        println!(
            "seed {seed}: allocations = {}",
            allocations
                .sorted()
                .iter()
                .map(|t| t.display(&interner).to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!(
        "diagnosis stable across strategies; allocation nondeterministic but always a matching."
    );
}

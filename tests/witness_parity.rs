//! Section 4.4's second way out of the evenness impasse: "sacrifice
//! determinism by allowing a nondeterministic construct to pick an
//! arbitrary element from a set". The witness operator `W` of [14]
//! (FO+IFP+W, Section 5.2) is exactly that construct; this test
//! computes evenness with it in the while language and checks that the
//! answer is independent of the choices — the `det(·)` fragment story
//! of Section 5.3, on the fixpoint-logic side.

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::while_lang::{parse_while_program, run};

/// Build the witness-based parity program:
/// repeatedly pick an arbitrary unprocessed element of R,
/// mark it processed, and flip a parity flag.
const PARITY_W: &str = "
    evenFlag := { | true };
    while (exists x (R(x) & !done(x))) do
        cur  := W { x | R(x) & !done(x) };
        done += { x | cur(x) };
        tmp  := { | !evenFlag };
        evenFlag := { | tmp };
    end
";

fn parity_input(interner: &mut Interner, k: usize) -> Instance {
    let r = interner.intern("R");
    let mut input = Instance::new();
    input.ensure(r, 1);
    for v in 0..k as i64 {
        input.insert_fact(r, Tuple::from([Value::Int(v)]));
    }
    input
}

#[test]
fn witness_parity_matches_oracle_for_all_choosers() {
    let mut interner = Interner::new();
    let (program, _) = parse_while_program(PARITY_W, &mut interner).unwrap();
    assert!(program.has_witness());
    let even_flag = interner.get("evenFlag").unwrap();

    for k in 0..=6usize {
        let input = parity_input(&mut interner, k);
        let expected = k % 2 == 0;
        // Several deterministic chooser policies: first, last, middle,
        // and a couple of pseudo-random ones.
        let policies: Vec<Box<dyn FnMut(usize) -> usize>> = vec![
            Box::new(|_n| 0),
            Box::new(|n| n - 1),
            Box::new(|n| n / 2),
            Box::new(move |n| (7 * n + 3) % n),
            Box::new(move |n| (11 * n + 5) % n),
        ];
        for (pidx, mut policy) in policies.into_iter().enumerate() {
            let mut chooser = |n: usize| policy(n);
            let result = run(&program, &input, 10_000, Some(&mut chooser)).unwrap();
            let got = result
                .instance
                .relation(even_flag)
                .is_some_and(|rel| !rel.is_empty());
            assert_eq!(got, expected, "|R| = {k}, policy #{pidx}");
        }
    }
}

#[test]
fn witness_parity_processes_each_element_once() {
    let mut interner = Interner::new();
    let (program, _) = parse_while_program(PARITY_W, &mut interner).unwrap();
    let done = interner.get("done").unwrap();
    let input = parity_input(&mut interner, 5);
    let mut chooser = |n: usize| n - 1;
    let result = run(&program, &input, 10_000, Some(&mut chooser)).unwrap();
    // Every element processed exactly once; iterations = |R|.
    assert_eq!(result.instance.relation(done).unwrap().len(), 5);
    assert_eq!(result.iterations, 5);
}

#[test]
fn witness_program_is_not_fixpoint_discipline() {
    // It uses destructive assignment and a sentence guard: full
    // while+W (FO+PFP+W), not FO+IFP+W — evenness needs the
    // destructive parity flip.
    let mut interner = Interner::new();
    let (program, _) = parse_while_program(PARITY_W, &mut interner).unwrap();
    assert!(!program.is_fixpoint());
}

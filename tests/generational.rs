//! Differential property tests for the generational storage layer: the
//! semi-naive engines now read per-round deltas straight out of relation
//! generations (segment marks) instead of a separate delta instance, so
//! these tests pin the equivalence naive == semi-naive == stratified on
//! seeded random inputs *and* check the storage-level invariants the
//! rewrite is supposed to guarantee (no index rebuilds on growth-only
//! workloads, per-round segment promotion).

use unchained::common::telemetry::Telemetry;
use unchained::common::{Instance, Interner, Rng, Tuple, Value};
use unchained::core::{naive, seminaive, stratified, EvalOptions};
use unchained::harness::randprog::{random_edb, random_program, Fragment, RandProgConfig};
use unchained::parser::parse_program;

fn random_graph(interner: &mut Interner, nodes: i64, edges: usize, seed: u64) -> Instance {
    let g = interner.intern("G");
    let mut rng = Rng::seeded(seed);
    let mut inst = Instance::new();
    for _ in 0..edges {
        let a = rng.gen_range_i64(0, nodes);
        let b = rng.gen_range_i64(0, nodes);
        inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    inst
}

fn tc_program(interner: &mut Interner) -> unchained::parser::Program {
    parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- G(x,z), T(z,y).",
        interner,
    )
    .unwrap()
}

/// Naive evaluation (no deltas at all) and semi-naive evaluation (the
/// generational delta path) must produce byte-identical output on random
/// transitive-closure inputs, across graph shapes from sparse to dense.
#[test]
fn naive_and_generational_seminaive_identical_on_random_tc() {
    for seed in 0..25u64 {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let edges = 4 + (seed as usize % 3) * 10;
        let input = random_graph(&mut i, 10, edges, seed);
        let a = naive::minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let b = seminaive::minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let c = stratified::eval(&p, &input, EvalOptions::default()).unwrap();
        assert_eq!(
            a.instance.display(&i).to_string(),
            b.instance.display(&i).to_string(),
            "naive vs seminaive, seed {seed}"
        );
        assert_eq!(
            b.instance.display(&i).to_string(),
            c.instance.display(&i).to_string(),
            "seminaive vs stratified, seed {seed}"
        );
    }
}

/// Stratified evaluation routes every stratum through the same
/// generational fixpoint; on random stratifiable Datalog¬ programs it
/// must agree with itself run twice (determinism) and, on the negation
/// fragment, with the naive-per-stratum semantics captured by the
/// existing harness oracles. Here we pin determinism plus agreement of
/// the delta path with the full-evaluation first round.
#[test]
fn stratified_generational_path_deterministic_on_random_negation_programs() {
    for seed in 0..25u64 {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Semipositive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xBEEF);
        let a = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        assert_eq!(
            a.instance.display(&i).to_string(),
            b.instance.display(&i).to_string(),
            "seed {seed}"
        );
    }
}

/// On a growth-only workload (pure Datalog TC), full-relation indexes
/// must never be rebuilt: every round's new tuples are absorbed by
/// appending the freshly committed segment. A long chain maximizes the
/// number of rounds, so this is exactly the "index work proportional to
/// the delta" claim of the storage rewrite.
#[test]
fn long_chain_tc_absorbs_instead_of_rebuilding() {
    let mut i = Interner::new();
    let p = tc_program(&mut i);
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    for k in 0..48i64 {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    let tel = Telemetry::enabled();
    let run = seminaive::minimum_model(
        &p,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    // 48-node chain: T has n*(n+1)/2 = 1176 pairs over 48 rounds.
    assert_eq!(
        run.instance.relation(i.get("T").unwrap()).unwrap().len(),
        1176
    );
    let trace = tel.snapshot().unwrap();
    assert!(trace.stages.len() >= 40, "chain TC needs many rounds");
    assert_eq!(
        trace.joins.index_rebuilds, 0,
        "growth-only workload must never rebuild a full index"
    );
    // Right-linear TC joins the delta against the *static* G, so the one
    // full index is a pure cache hit every round — never rebuilt.
    assert!(
        trace.joins.index_hits as usize >= trace.stages.len() - 2,
        "G's full index should be reused every round ({} hits, {} rounds)",
        trace.joins.index_hits,
        trace.stages.len()
    );
}

/// Nonlinear TC joins the delta against the *growing* full T relation:
/// its full index must absorb each round's committed segment by
/// appending, never by rebuilding, and the appended tuple count is
/// bounded by the facts actually derived (index work proportional to
/// the deltas, not rounds × relation size).
#[test]
fn nonlinear_tc_appends_committed_segments() {
    let mut i = Interner::new();
    let p = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- T(x,z), T(z,y).",
        &mut i,
    )
    .unwrap();
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    for k in 0..32i64 {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    let tel = Telemetry::enabled();
    let run = seminaive::minimum_model(
        &p,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    assert_eq!(
        run.instance.relation(i.get("T").unwrap()).unwrap().len(),
        528
    );
    let trace = tel.snapshot().unwrap();
    assert_eq!(trace.joins.index_rebuilds, 0);
    assert!(
        trace.joins.index_appends > 0,
        "full T index should absorb committed segments incrementally"
    );
    let derived = trace.total_facts_added() as u64 + input.fact_count() as u64;
    // Two delta variants each keep a full-T index on a different key, so
    // each derived tuple is appended at most once per index — per worker
    // cache, when the run is parallel (each worker owns index replicas).
    let threads = EvalOptions::default().threads.get() as u64;
    assert!(
        trace.joins.appended_tuples <= 2 * threads * derived,
        "appended {} tuples for {} derived facts",
        trace.joins.appended_tuples,
        trace.total_facts_added()
    );
}

/// Each committed round becomes one frozen segment per touched relation,
/// and the fixpoint leaves nothing uncommitted in the recent tail.
#[test]
fn fixpoint_leaves_round_aligned_segments() {
    let mut i = Interner::new();
    let p = tc_program(&mut i);
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    for k in 0..12i64 {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    let run = seminaive::minimum_model(&p, &input, EvalOptions::default()).unwrap();
    let t_rel = run.instance.relation(i.get("T").unwrap()).unwrap();
    assert_eq!(t_rel.recent_len(), 0, "fixpoint commits every round");
    // T gains one segment per productive round (12 rounds for a 12-edge
    // chain), G exactly one (its input segment).
    assert_eq!(t_rel.segment_count(), 12);
    assert_eq!(run.instance.relation(g).unwrap().segment_count(), 1);
}

/// The parallel executor must be invisible in the output: threads=1 and
/// threads=4 produce byte-identical instances and identical derived-fact
/// gauges (stage count, facts added, matches fired) on seeded random TC
/// inputs. Index counters are allowed to differ (each worker owns index
/// replicas); the *semantic* work is not.
#[test]
fn parallel_seminaive_byte_identical_on_random_tc() {
    for seed in 0..15u64 {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let edges = 4 + (seed as usize % 3) * 10;
        let input = random_graph(&mut i, 10, edges, seed);
        let tel_seq = Telemetry::enabled();
        let seq = seminaive::minimum_model(
            &p,
            &input,
            EvalOptions::default()
                .with_threads(1)
                .with_telemetry(tel_seq.clone()),
        )
        .unwrap();
        let tel_par = Telemetry::enabled();
        let par = seminaive::minimum_model(
            &p,
            &input,
            EvalOptions::default()
                .with_threads(4)
                .with_telemetry(tel_par.clone()),
        )
        .unwrap();
        assert_eq!(
            seq.instance.display(&i).to_string(),
            par.instance.display(&i).to_string(),
            "threads=1 vs threads=4, seed {seed}"
        );
        let (a, b) = (tel_par.snapshot().unwrap(), tel_seq.snapshot().unwrap());
        assert_eq!(a.stages.len(), b.stages.len(), "stage count, seed {seed}");
        assert_eq!(
            a.total_facts_added(),
            b.total_facts_added(),
            "facts derived, seed {seed}"
        );
        assert_eq!(a.rules_fired, b.rules_fired, "matches fired, seed {seed}");
        assert_eq!(a.threads, 4, "parallel trace records its thread count");
    }
}

/// Same differential guarantee through the stratified engine on seeded
/// random semipositive (negation) programs: every stratum routes through
/// the parallel fixpoint, and the final instance must not depend on the
/// thread count.
#[test]
fn parallel_stratified_byte_identical_on_random_negation_programs() {
    for seed in 0..15u64 {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Semipositive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xBEEF);
        let tel_seq = Telemetry::enabled();
        let seq = stratified::eval(
            &program,
            &input,
            EvalOptions::default()
                .with_threads(1)
                .with_telemetry(tel_seq.clone()),
        )
        .unwrap();
        let tel_par = Telemetry::enabled();
        let par = stratified::eval(
            &program,
            &input,
            EvalOptions::default()
                .with_threads(4)
                .with_telemetry(tel_par.clone()),
        )
        .unwrap();
        assert_eq!(
            seq.instance.display(&i).to_string(),
            par.instance.display(&i).to_string(),
            "threads=1 vs threads=4, seed {seed}"
        );
        let (a, b) = (tel_par.snapshot().unwrap(), tel_seq.snapshot().unwrap());
        assert_eq!(
            a.total_facts_added(),
            b.total_facts_added(),
            "facts derived, seed {seed}"
        );
        assert_eq!(a.stages.len(), b.stages.len(), "stage count, seed {seed}");
    }
}

/// The 1-vs-4 check above only exercises power-of-two worker pools; odd
/// and oversubscribed pools chunk the rule/delta work differently (uneven
/// chunk sizes, workers with no work at all). Sweep threads 2, 3 and 8
/// against the sequential reference on the same seeded TC inputs.
#[test]
fn parallel_seminaive_matches_across_thread_counts() {
    for seed in 0..10u64 {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let edges = 4 + (seed as usize % 3) * 10;
        let input = random_graph(&mut i, 10, edges, seed);
        let tel_seq = Telemetry::enabled();
        let seq = seminaive::minimum_model(
            &p,
            &input,
            EvalOptions::default()
                .with_threads(1)
                .with_telemetry(tel_seq.clone()),
        )
        .unwrap();
        let ref_trace = tel_seq.snapshot().unwrap();
        for threads in [2usize, 3, 8] {
            let tel = Telemetry::enabled();
            let par = seminaive::minimum_model(
                &p,
                &input,
                EvalOptions::default()
                    .with_threads(threads)
                    .with_telemetry(tel.clone()),
            )
            .unwrap();
            assert_eq!(
                seq.instance.display(&i).to_string(),
                par.instance.display(&i).to_string(),
                "threads=1 vs threads={threads}, seed {seed}"
            );
            let trace = tel.snapshot().unwrap();
            assert_eq!(
                trace.stages.len(),
                ref_trace.stages.len(),
                "stage count at threads={threads}, seed {seed}"
            );
            assert_eq!(
                trace.total_facts_added(),
                ref_trace.total_facts_added(),
                "facts derived at threads={threads}, seed {seed}"
            );
        }
    }
}

/// Same sweep through the stratified engine on seeded semipositive
/// programs: stratum scheduling must be invisible at any worker count.
#[test]
fn parallel_stratified_matches_across_thread_counts() {
    for seed in 0..10u64 {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Semipositive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xBEEF);
        let seq =
            stratified::eval(&program, &input, EvalOptions::default().with_threads(1)).unwrap();
        for threads in [2usize, 3, 8] {
            let par = stratified::eval(
                &program,
                &input,
                EvalOptions::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(
                seq.instance.display(&i).to_string(),
                par.instance.display(&i).to_string(),
                "threads=1 vs threads={threads}, seed {seed}"
            );
        }
    }
}

/// Chunking edge case: a 7-edge chain at threads=3 splits neither the
/// rule set nor any round's delta evenly, and the side predicate `S`
/// saturates in round one — every later round evaluates its rule against
/// an *empty* delta. The empty chunks and uneven remainders must not
/// perturb the fixpoint or derive duplicate facts.
#[test]
fn odd_thread_count_with_empty_delta_round_is_exact() {
    let mut i = Interner::new();
    let p = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- G(x,z), T(z,y).\n\
         S(x) :- G(x, x).",
        &mut i,
    )
    .unwrap();
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    for k in 0..7i64 {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    // One self-loop feeds S exactly once, in the very first round.
    input.insert_fact(g, Tuple::from([Value::Int(3), Value::Int(3)]));
    let tel = Telemetry::enabled();
    let run = seminaive::minimum_model(
        &p,
        &input,
        EvalOptions::default()
            .with_threads(3)
            .with_telemetry(tel.clone()),
    )
    .unwrap();
    let seq = seminaive::minimum_model(&p, &input, EvalOptions::default().with_threads(1)).unwrap();
    assert_eq!(
        run.instance.display(&i).to_string(),
        seq.instance.display(&i).to_string(),
        "threads=3 vs threads=1"
    );
    // S holds exactly the one self-loop node; the chain closure includes
    // the loop-augmented pairs, and no fact is derived twice.
    assert_eq!(run.instance.relation(i.get("S").unwrap()).unwrap().len(), 1);
    let trace = tel.snapshot().unwrap();
    assert!(
        trace.stages.len() >= 5,
        "chain TC must run several rounds after S's delta goes empty"
    );
    assert_eq!(trace.threads, 3);
}

/// Mutating one clone of an instance must not poison delta marks taken
/// on the other: epoch forking downgrades the stale mark to a superset
/// scan instead of silently missing tuples.
#[test]
fn cloned_instances_keep_independent_delta_lineages() {
    let mut i = Interner::new();
    let g = i.intern("G");
    let mut a = Instance::new();
    a.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
    a.commit_all();
    let mark = unchained::common::DeltaHandle::capture(&a);
    let mut b = a.clone();
    b.insert_fact(g, Tuple::from([Value::Int(3), Value::Int(4)]));
    // The clone's mutation forked its epoch: the old mark now reports
    // *all* of b's tuples (a sound superset), while a's lineage is intact.
    assert_eq!(b.relation(g).unwrap().iter_since(mark.mark(g)).count(), 2);
    assert_eq!(a.relation(g).unwrap().iter_since(mark.mark(g)).count(), 0);
}

/// Property sweep of the symmetric hazard: mutating the *original*
/// after taking a clone must fork the original's epoch — the shared
/// lineage came first, but neither side owns it. Whatever mix of
/// inserts and retracts lands on the original, the untouched clone's
/// contents and delta lineage must stay byte-stable, and a mark taken
/// before the split must stop matching the mutated side's storage
/// (degrading to a full, sound superset scan).
#[test]
fn mutating_the_original_forks_the_epoch_not_the_clone() {
    for seed in 0..30u64 {
        let mut rng = Rng::seeded(0xC10E + seed);
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut orig = Instance::new();
        for k in 0..6i64 {
            orig.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        orig.commit_all();
        let mark = unchained::common::DeltaHandle::capture(&orig);
        let clone = orig.clone();
        let clone_before = clone.display(&i).to_string();
        let edits = 1 + rng.gen_range_i64(0, 5);
        for _ in 0..edits {
            if rng.gen_range_i64(0, 2) == 0 {
                let a = rng.gen_range_i64(10, 30);
                orig.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(a)]));
            } else {
                let k = rng.gen_range_i64(0, 6);
                orig.retract_fact(g, &Tuple::from([Value::Int(k), Value::Int(k + 1)]));
            }
        }
        // The untouched clone: contents and delta lineage byte-stable.
        assert_eq!(clone.display(&i).to_string(), clone_before, "seed {seed}");
        assert_eq!(
            clone.relation(g).unwrap().iter_since(mark.mark(g)).count(),
            0,
            "seed {seed}: clone's delta lineage must stay exact"
        );
        // The mutated original: the pre-split mark must not claim to
        // still match this storage.
        let live = orig.relation(g).unwrap().len();
        assert_eq!(
            orig.relation(g).unwrap().iter_since(mark.mark(g)).count(),
            live,
            "seed {seed}: stale mark must degrade to a superset scan"
        );
    }
}

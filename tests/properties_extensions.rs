//! Property-style tests for the extension subsystems: magic sets,
//! stable models, the choice operator, distributed exchange, and the
//! FO ↔ algebra translation.
//!
//! Formerly proptest-based; rewritten as seeded deterministic loops so
//! the suite builds offline with no external dependencies.

use unchained::common::{Instance, Interner, Rng, Tuple, Value};
use unchained::core::{inflationary, magic, stable, EvalOptions};
use unchained::exchange::{Network, Peer};
use unchained::fo::{eval_formula, eval_via_algebra, FoTerm, FoVar, Formula};
use unchained::harness::programs;
use unchained::nondet::{run_once, NondetProgram, RandomChooser};
use unchained::parser::parse_program;

fn random_edges(rng: &mut Rng, max_node: i64, max_edges: usize) -> Vec<(i64, i64)> {
    let count = rng.gen_index(max_edges + 1);
    (0..count)
        .map(|_| {
            (
                rng.gen_range_i64(0, max_node),
                rng.gen_range_i64(0, max_node),
            )
        })
        .collect()
}

/// A formula skeleton over placeholder predicates (0 = binary G,
/// 1 = unary P) and variables FoVar(0..3); `resolve_formula` swaps in
/// the real symbols.
#[derive(Clone, Debug)]
enum Skel {
    G(u32, u32),
    P(u32),
    EqVars(u32, u32),
    EqConst(u32, i64),
    True,
    False,
    Not(Box<Skel>),
    And(Box<Skel>, Box<Skel>),
    Or(Box<Skel>, Box<Skel>),
    Exists(u32, Box<Skel>),
    Forall(u32, Box<Skel>),
}

/// A random skeleton of connective depth ≤ `depth`.
fn random_skel(rng: &mut Rng, depth: usize) -> Skel {
    if depth == 0 || rng.gen_bool(0.35) {
        match rng.gen_index(6) {
            0 => Skel::G(rng.gen_index(3) as u32, rng.gen_index(3) as u32),
            1 => Skel::P(rng.gen_index(3) as u32),
            2 => Skel::EqVars(rng.gen_index(3) as u32, rng.gen_index(3) as u32),
            3 => Skel::EqConst(rng.gen_index(3) as u32, rng.gen_range_i64(0, 4)),
            4 => Skel::True,
            _ => Skel::False,
        }
    } else {
        match rng.gen_index(5) {
            0 => Skel::Not(Box::new(random_skel(rng, depth - 1))),
            1 => Skel::And(
                Box::new(random_skel(rng, depth - 1)),
                Box::new(random_skel(rng, depth - 1)),
            ),
            2 => Skel::Or(
                Box::new(random_skel(rng, depth - 1)),
                Box::new(random_skel(rng, depth - 1)),
            ),
            3 => Skel::Exists(
                rng.gen_index(3) as u32,
                Box::new(random_skel(rng, depth - 1)),
            ),
            _ => Skel::Forall(
                rng.gen_index(3) as u32,
                Box::new(random_skel(rng, depth - 1)),
            ),
        }
    }
}

fn resolve_formula(
    skel: &Skel,
    g: unchained::common::Symbol,
    p: unchained::common::Symbol,
) -> Formula {
    let var = |v: u32| FoTerm::Var(FoVar(v));
    match skel {
        Skel::G(a, b) => Formula::Atom(g, vec![var(*a), var(*b)]),
        Skel::P(a) => Formula::Atom(p, vec![var(*a)]),
        Skel::EqVars(a, b) => Formula::Eq(var(*a), var(*b)),
        Skel::EqConst(v, c) => Formula::Eq(var(*v), FoTerm::Const(Value::Int(*c))),
        Skel::True => Formula::True,
        Skel::False => Formula::False,
        Skel::Not(f) => resolve_formula(f, g, p).not(),
        Skel::And(a, b) => resolve_formula(a, g, p).and(resolve_formula(b, g, p)),
        Skel::Or(a, b) => resolve_formula(a, g, p).or(resolve_formula(b, g, p)),
        Skel::Exists(v, f) => Formula::exists([FoVar(*v)], resolve_formula(f, g, p)),
        Skel::Forall(v, f) => Formula::forall([FoVar(*v)], resolve_formula(f, g, p)),
    }
}

fn graph_instance(interner: &mut Interner, name: &str, es: &[(i64, i64)]) -> Instance {
    let g = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(g, 2);
    for &(a, b) in es {
        instance.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    instance
}

/// Magic-sets single-source TC equals full evaluation filtered to the
/// source, on arbitrary graphs and sources.
#[test]
fn magic_equals_full_on_random_graphs() {
    for seed in 0..48u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 7, 18);
        let source = rng.gen_range_i64(0, 7);
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let input = graph_instance(&mut i, "G", &es);
        let query = magic::QueryPattern::new(t, vec![Some(Value::Int(source)), None]);
        // compare_with_full asserts equality internally.
        let (_, stats) = magic::compare_with_full(&program, &query, &input, &mut i).unwrap();
        // Magic never derives more than full (plus its magic facts are
        // counted, so allow equality).
        assert!(
            stats.magic_facts <= stats.full_facts + es.len() + 1,
            "seed {seed}"
        );
    }
}

/// Every stable model of the win-move program on a random game is a
/// fixpoint of its own reduct and lies in the well-founded interval.
#[test]
fn stable_models_are_reduct_fixpoints() {
    for seed in 0..48u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 5, 8);
        let mut i = Interner::new();
        let program = parse_program(programs::WIN, &mut i).unwrap();
        let input = graph_instance(&mut i, "moves", &es);
        let win = i.get("win").unwrap();
        let options = stable::StableOptions {
            max_unknowns: 12,
            ..Default::default()
        };
        let Ok(models) = stable::stable_models(&program, &input, options) else {
            // Too many unknowns for this instance: skip.
            continue;
        };
        let wf =
            unchained::core::wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        for m in &models {
            assert!(
                stable::is_stable_model(&program, &input, m, EvalOptions::default()).unwrap(),
                "seed {seed}"
            );
            for t in wf
                .true_facts
                .relation(win)
                .into_iter()
                .flat_map(|r| r.iter())
            {
                assert!(m.contains_fact(win, t), "seed {seed}");
            }
            for t in m.relation(win).into_iter().flat_map(|r| r.iter()) {
                assert!(wf.possible_facts.contains_fact(win, t), "seed {seed}");
            }
        }
    }
}

/// The choice FD holds in every run of the assignment program: each
/// student at most one advisor, regardless of seed and sizes.
#[test]
fn choice_fd_always_holds() {
    for seed in 0..48u64 {
        let mut rng = Rng::seeded(seed);
        let students = 1 + rng.gen_index(4);
        let profs = 1 + rng.gen_index(3);
        let chooser_seed = rng.next_u64();
        let mut i = Interner::new();
        let program = parse_program(
            "advises(s, a) :- student(s), prof(a), choice((s),(a)).",
            &mut i,
        )
        .unwrap();
        let student = i.get("student").unwrap();
        let prof = i.get("prof").unwrap();
        let advises = i.get("advises").unwrap();
        let mut input = Instance::new();
        for s in 0..students as i64 {
            input.insert_fact(student, Tuple::from([Value::Int(s)]));
        }
        for a in 0..profs as i64 {
            input.insert_fact(prof, Tuple::from([Value::Int(100 + a)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut chooser = RandomChooser::seeded(chooser_seed);
        let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
        let rel = run.instance.relation(advises).unwrap();
        assert_eq!(rel.len(), students, "seed {seed}");
        let mut seen = std::collections::BTreeSet::new();
        for t in rel.iter() {
            assert!(seen.insert(t[0]), "seed {seed}");
        }
    }
}

/// Distributed evaluation converges to the centralized answer on
/// random edge partitions.
#[test]
fn exchange_matches_centralized() {
    for seed in 0..48u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 12);
        let split_seed = rng.next_u64() % 100;
        let mut i = Interner::new();
        let peer_prog = parse_program(
            "T(x,y) :- G(x,y). T(x,y) :- T(x,z), T(z,y). T(x,y) :- Timp(x,y).",
            &mut i,
        )
        .unwrap();
        let central_prog =
            parse_program("T(x,y) :- G(x,y). T(x,y) :- T(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let timp = i.get("Timp").unwrap();
        // Pseudo-random edge split driven by split_seed.
        let mut db_a = Instance::new();
        db_a.ensure(g, 2);
        let mut db_b = Instance::new();
        db_b.ensure(g, 2);
        for (idx, &(a, b)) in es.iter().enumerate() {
            let fact = Tuple::from([Value::Int(a), Value::Int(b)]);
            if (split_seed.wrapping_mul(31).wrapping_add(idx as u64)).is_multiple_of(2) {
                db_a.insert_fact(g, fact);
            } else {
                db_b.insert_fact(g, fact);
            }
        }
        let mut network = Network::new();
        network.add_peer(Peer::new("a", peer_prog.clone(), db_a).exporting(t, "b", timp));
        network.add_peer(Peer::new("b", peer_prog, db_b).exporting(t, "a", timp));
        network.run_to_convergence(200).unwrap();

        let central_input = graph_instance(&mut i, "G", &es);
        let central =
            inflationary::eval(&central_prog, &central_input, EvalOptions::default()).unwrap();
        let expected = central.instance.relation(t).unwrap();
        for name in ["a", "b"] {
            let got = network.peer(name).unwrap().database.relation(t).unwrap();
            assert!(got.same_tuples(expected), "seed {seed} peer {name}");
        }
    }
}

/// Codd's theorem, randomized: the FO → algebra translation agrees
/// with the direct formula evaluator on random formulas over a fixed
/// vocabulary.
#[test]
fn fo_algebra_translation_agrees() {
    let mut checked = 0;
    for seed in 0..96u64 {
        let mut rng = Rng::seeded(seed);
        let phi = random_skel(&mut rng, 3);
        let es = random_edges(&mut rng, 4, 8);
        let mut i = Interner::new();
        let g = i.intern("G");
        let p = i.intern("P");
        let mut inst = Instance::new();
        inst.ensure(g, 2);
        inst.ensure(p, 1);
        for &(a, b) in &es {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
            if a % 2 == 0 {
                inst.insert_fact(p, Tuple::from([Value::Int(a)]));
            }
        }
        // Keep the domain nonempty and small.
        let mut dom = inst.adom_sorted();
        if dom.is_empty() {
            dom.push(Value::Int(0));
        }
        let phi = resolve_formula(&phi, g, p);
        let layout = phi.free_vars();
        // The direct evaluator is exponential in |layout|; cap it.
        if layout.len() > 3 {
            continue;
        }
        let direct = eval_formula(&phi, &layout, &inst, &dom).unwrap();
        let via_algebra = eval_via_algebra(&phi, &layout, &inst, &dom).unwrap();
        assert!(direct.same_tuples(&via_algebra), "seed {seed}");
        checked += 1;
    }
    assert!(checked >= 48, "only {checked} formulas exercised");
}

/// Regression: a shrunken counterexample saved by the original
/// proptest suite — a variable bound by Exists shadowing a free
/// occurrence of the same variable in a conjoined equality.
#[test]
fn fo_algebra_regression_exists_shadowing() {
    let mut i = Interner::new();
    let g = i.intern("G");
    let p = i.intern("P");
    let mut inst = Instance::new();
    inst.ensure(g, 2);
    inst.ensure(p, 1);
    inst.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(0)]));
    let dom = inst.adom_sorted();
    let skel = Skel::And(
        Box::new(Skel::Exists(0, Box::new(Skel::EqVars(0, 2)))),
        Box::new(Skel::EqVars(0, 0)),
    );
    let phi = resolve_formula(&skel, g, p);
    let layout = phi.free_vars();
    let direct = eval_formula(&phi, &layout, &inst, &dom).unwrap();
    let via_algebra = eval_via_algebra(&phi, &layout, &inst, &dom).unwrap();
    assert!(direct.same_tuples(&via_algebra));
}

/// While-program display/parse roundtrip on synthesized programs.
#[test]
fn while_display_roundtrip() {
    for seed in 0..150u64 {
        let mut rng = Rng::seeded(seed);
        let n_stmts = 1 + rng.gen_index(3);
        let mut src = String::new();
        for k in 0..n_stmts {
            match rng.gen_index(3) {
                0 => src.push_str(&format!("R{k} += {{ x, y | G(x,y) & x != y }};\n")),
                1 => src.push_str(&format!("R{k} := {{ x | exists y (G(x,y)) or H(x) }};\n")),
                _ => src.push_str(&format!(
                    "while change do\n  R{k} += {{ x | forall y (G(y,x) -> R{k}(y)) }};\nend\n"
                )),
            }
        }
        let mut i1 = Interner::new();
        let (p1, v1) = unchained::while_lang::parse_while_program(&src, &mut i1).unwrap();
        let shown1 = unchained::while_lang::display_program(&p1, &v1, &i1).to_string();
        let mut i2 = Interner::new();
        let (p2, v2) = unchained::while_lang::parse_while_program(&shown1, &mut i2).unwrap();
        let shown2 = unchained::while_lang::display_program(&p2, &v2, &i2).to_string();
        assert_eq!(shown1, shown2, "seed {seed}");
    }
}

//! Edge-case integration tests: degenerate programs and instances that
//! historically break Datalog engines — empty programs, zero-arity
//! (propositional) relations, self-referential rules, unicode source,
//! and budget interactions.

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{
    inflationary, noninflationary, seminaive, stratified, wellfounded, EvalError, EvalOptions,
};
use unchained::parser::parse_program;

#[test]
fn empty_program_is_a_fixpoint_immediately() {
    let mut i = Interner::new();
    let program = parse_program("", &mut i).unwrap();
    let g = i.intern("G");
    let mut input = Instance::new();
    input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
    let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
    assert!(run.instance.same_facts(&input));
    assert_eq!(run.stages, 1);
    let run = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
    assert!(run.instance.same_facts(&input));
}

#[test]
fn propositional_programs() {
    // Pure zero-arity reasoning: a tiny boolean circuit.
    let mut i = Interner::new();
    let program = parse_program(
        "out :- in1, in2.\n\
         alarm :- out.\n\
         quiet :- !alarm.",
        &mut i,
    )
    .unwrap();
    let in1 = i.get("in1").unwrap();
    let in2 = i.get("in2").unwrap();
    let alarm = i.get("alarm").unwrap();
    let quiet = i.get("quiet").unwrap();
    // Both inputs on: alarm, not quiet (stratified reading).
    let mut on = Instance::new();
    on.insert_fact(in1, Tuple::from([]));
    on.insert_fact(in2, Tuple::from([]));
    let run = stratified::eval(&program, &on, EvalOptions::default()).unwrap();
    assert!(run.instance.contains_fact(alarm, &Tuple::from([])));
    assert!(!run.instance.contains_fact(quiet, &Tuple::from([])));
    // One input off: quiet.
    let mut off = Instance::new();
    off.insert_fact(in1, Tuple::from([]));
    let run = stratified::eval(&program, &off, EvalOptions::default()).unwrap();
    assert!(run.instance.contains_fact(quiet, &Tuple::from([])));
}

#[test]
fn self_loop_edges_and_reflexive_queries() {
    let mut i = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). L(x) :- T(x,x).",
        &mut i,
    )
    .unwrap();
    let g = i.get("G").unwrap();
    let l = i.get("L").unwrap();
    let mut input = Instance::new();
    input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(1)]));
    input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
    assert!(run.instance.contains_fact(l, &Tuple::from([Value::Int(1)])));
    assert!(!run.instance.contains_fact(l, &Tuple::from([Value::Int(2)])));
}

#[test]
fn unicode_program_text_end_to_end() {
    // The paper's own notation, verbatim.
    let mut i = Interner::new();
    let program = parse_program("win(x) ← moves(x,y), ¬win(y).", &mut i).unwrap();
    let moves = i.get("moves").unwrap();
    let win = i.get("win").unwrap();
    let mut input = Instance::new();
    input.insert_fact(moves, Tuple::from([Value::Int(0), Value::Int(1)]));
    let model = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
    assert_eq!(
        model.truth(win, &Tuple::from([Value::Int(0)])),
        wellfounded::Truth::True
    );
}

#[test]
fn mixed_value_kinds_do_not_unify() {
    // Integer 1, symbol '1', and an invented value are three distinct
    // domain elements.
    let mut i = Interner::new();
    let program = parse_program("Same(x) :- A(x), B(x).", &mut i).unwrap();
    let a = i.get("A").unwrap();
    let b = i.get("B").unwrap();
    let same = i.get("Same").unwrap();
    let sym_one = Value::sym(&mut i, "1");
    let mut input = Instance::new();
    input.insert_fact(a, Tuple::from([Value::Int(1)]));
    input.insert_fact(b, Tuple::from([sym_one]));
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
    assert!(run.instance.relation(same).unwrap().is_empty());
}

#[test]
fn constants_in_program_extend_active_domain() {
    // A rule mentioning constant 9 makes 9 part of adom(P, I): the
    // negative-only rule ranges over it.
    let mut i = Interner::new();
    let program = parse_program(
        "Seen(9) :- Marker(9).\n\
         All(x) :- !Seen(x).",
        &mut i,
    )
    .unwrap();
    let all = i.get("All").unwrap();
    let run = inflationary::eval(&program, &Instance::new(), EvalOptions::default()).unwrap();
    // adom(P, ∅) = {9}; Seen never derived, so All(9) holds.
    assert!(run
        .instance
        .contains_fact(all, &Tuple::from([Value::Int(9)])));
}

#[test]
fn duplicate_rules_are_harmless() {
    let mut i = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y). T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
        &mut i,
    )
    .unwrap();
    let g = i.get("G").unwrap();
    let t = i.get("T").unwrap();
    let mut input = Instance::new();
    for k in 0..3i64 {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
    assert_eq!(run.instance.relation(t).unwrap().len(), 6);
}

#[test]
fn max_stages_zero_fails_fast() {
    let mut i = Interner::new();
    let program = parse_program("T(x,y) :- G(x,y).", &mut i).unwrap();
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
    assert!(matches!(
        inflationary::eval(&program, &input, EvalOptions::default().with_max_stages(0)),
        Err(EvalError::StageLimitExceeded(0))
    ));
}

#[test]
fn negation_on_never_mentioned_relation() {
    // ¬M(x) where M appears nowhere else: absent relation = empty, so
    // the negation is vacuously true.
    let mut i = Interner::new();
    let program = parse_program("A(x) :- B(x), !M(x).", &mut i).unwrap();
    let b = i.get("B").unwrap();
    let a = i.get("A").unwrap();
    let mut input = Instance::new();
    input.insert_fact(b, Tuple::from([Value::Int(5)]));
    let run = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
    assert!(run.instance.contains_fact(a, &Tuple::from([Value::Int(5)])));
}

#[test]
fn noninflationary_delete_then_rederive_cycles_are_detected_not_looped() {
    // A two-rule system whose state oscillates with period 2 via an
    // auxiliary marker.
    let mut i = Interner::new();
    let program = parse_program(
        "mark :- !mark.\n\
         !mark :- mark.",
        &mut i,
    )
    .unwrap();
    let err = noninflationary::eval(
        &program,
        &Instance::new(),
        noninflationary::ConflictPolicy::PreferPositive,
        EvalOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, EvalError::Diverged { period: 2, .. }),
        "{err}"
    );
}

#[test]
fn large_arity_relations() {
    let mut i = Interner::new();
    let program = parse_program("Wide(a,b,c,d,e,f) :- In(a,b,c), In(d,e,f).", &mut i).unwrap();
    let input_pred = i.get("In").unwrap();
    let wide = i.get("Wide").unwrap();
    let mut input = Instance::new();
    input.insert_fact(
        input_pred,
        Tuple::from([Value::Int(1), Value::Int(2), Value::Int(3)]),
    );
    input.insert_fact(
        input_pred,
        Tuple::from([Value::Int(4), Value::Int(5), Value::Int(6)]),
    );
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
    assert_eq!(run.instance.relation(wide).unwrap().len(), 4);
    assert_eq!(run.instance.relation(wide).unwrap().arity(), 6);
}

//! Property-based tests (proptest) of the core invariants:
//! oracle agreement on random graphs, monotonicity of Datalog,
//! inflationary growth, 3-valued model containment, orientation
//! validity, and parser round-tripping.

use proptest::prelude::*;
use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{
    inflationary, naive, seminaive, stratified, wellfounded, EvalOptions,
};
use unchained::harness::oracles;
use unchained::harness::programs;
use unchained::nondet::{run_once, NondetProgram, RandomChooser};
use unchained::parser::parse_program;

/// Strategy: a set of edges over a small node universe.
fn edges(max_node: i64, max_edges: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..max_node, 0..max_node), 0..max_edges)
}

fn graph_instance(interner: &mut Interner, edges: &[(i64, i64)]) -> Instance {
    let g = interner.intern("G");
    let mut instance = Instance::new();
    instance.ensure(g, 2);
    for &(a, b) in edges {
        instance.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    instance
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Semi-naive and naive evaluation compute the same minimum model.
    #[test]
    fn seminaive_equals_naive(es in edges(7, 20)) {
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let a = naive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let b = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        prop_assert!(a.instance.same_facts(&b.instance));
    }

    /// The Datalog TC answer equals the BFS oracle.
    #[test]
    fn tc_matches_oracle(es in edges(8, 24)) {
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        prop_assert!(run
            .instance
            .relation(t)
            .unwrap()
            .same_tuples(&oracles::transitive_closure(&input, g)));
    }

    /// Monotonicity of pure Datalog: adding edges never removes answers.
    #[test]
    fn datalog_is_monotone(es in edges(6, 15), extra in (0i64..6, 0i64..6)) {
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let mut bigger = input.clone();
        bigger.insert_fact(g, Tuple::from([Value::Int(extra.0), Value::Int(extra.1)]));
        let small = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let large = seminaive::minimum_model(&program, &bigger, EvalOptions::default()).unwrap();
        for tuple in small.instance.relation(t).unwrap().iter() {
            prop_assert!(large.instance.contains_fact(t, tuple));
        }
    }

    /// Inflationary stages grow monotonically: the final instance
    /// contains the input, and the answer under a pure-Datalog program
    /// equals the minimum model.
    #[test]
    fn inflationary_contains_input(es in edges(6, 15)) {
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        for tuple in input.relation(g).unwrap().iter() {
            prop_assert!(run.instance.contains_fact(g, tuple));
        }
        let mm = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        prop_assert!(run.instance.same_facts(&mm.instance));
    }

    /// The semi-naive inflationary engine is stage-exact with the
    /// naive one on random inputs of the win program.
    #[test]
    fn inflationary_seminaive_stage_exact(es in edges(6, 14)) {
        let mut i = Interner::new();
        let program = parse_program(programs::WIN, &mut i).unwrap();
        let moves = i.intern("moves");
        let mut input = Instance::new();
        input.ensure(moves, 2);
        for &(a, b) in &es {
            input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let a = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = inflationary::eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
        prop_assert!(a.instance.same_facts(&b.instance));
        prop_assert_eq!(a.stages, b.stages);
    }

    /// 3-valued containment: true facts ⊆ possible facts, and the
    /// model is consistent with the game oracle on win-move inputs.
    #[test]
    fn wellfounded_true_subset_of_possible(es in edges(6, 14)) {
        let mut i = Interner::new();
        let program = parse_program(programs::WIN, &mut i).unwrap();
        // Reuse the edge set as a `moves` relation.
        let moves = i.intern("moves");
        let mut input = Instance::new();
        input.ensure(moves, 2);
        for &(a, b) in &es {
            input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let model = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        let win = i.get("win").unwrap();
        if let Some(rel) = model.true_facts.relation(win) {
            for t in rel.iter() {
                prop_assert!(model.possible_facts.contains_fact(win, t));
            }
        }
        // Consistency with the oracle.
        let solution = oracles::solve_game(&input, moves);
        for (&state, &value) in &solution {
            let truth = model.truth(win, &Tuple::from([state]));
            let expected = match value {
                oracles::GameValue::Win => wellfounded::Truth::True,
                oracles::GameValue::Lose => wellfounded::Truth::False,
                oracles::GameValue::Draw => wellfounded::Truth::Unknown,
            };
            prop_assert_eq!(truth, expected);
        }
    }

    /// The stratified CTC answer partitions adom² with the TC answer.
    #[test]
    fn ctc_partitions_square(es in edges(6, 14)) {
        let mut i = Interner::new();
        let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let t = i.get("T").unwrap();
        let ct = i.get("CT").unwrap();
        let run = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        let n = input.adom().len();
        let t_rel = run.instance.relation(t).unwrap();
        let ct_rel = run.instance.relation(ct).unwrap();
        prop_assert_eq!(t_rel.len() + ct_rel.len(), n * n);
        for tuple in t_rel.iter() {
            prop_assert!(!ct_rel.contains(tuple));
        }
    }

    /// Every nondeterministic orientation run yields a valid
    /// orientation, for every seed.
    #[test]
    fn orientation_runs_always_valid(es in edges(6, 12), seed in 0u64..1000) {
        let mut i = Interner::new();
        let program = parse_program(programs::ORIENTATION, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let original = input.relation(g).unwrap().clone();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut chooser = RandomChooser::seeded(seed);
        let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
        // Self-loops are their own reverse and cannot be oriented, so
        // exclude graphs with self-loops from the validity check — the
        // program deletes them outright (G(x,x),G(x,x) matches).
        if es.iter().all(|&(a, b)| a != b) {
            prop_assert!(oracles::is_valid_orientation(&original, run.instance.relation(g).unwrap()));
        }
    }

    /// Parser round-trip: display of a parsed program reparses to the
    /// same display.
    #[test]
    fn parser_display_roundtrip(n_rules in 1usize..6, seed in 0u64..500) {
        // Deterministic pseudo-random rule synthesis from the seed.
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (s >> 33) as usize };
        let mut src = String::new();
        for r in 0..n_rules {
            let head_arity = next() % 3;
            let vars = ["x", "y", "z"];
            let head_args: Vec<&str> = (0..head_arity).map(|k| vars[k]).collect();
            let mut rule = format!("H{r}");
            if !head_args.is_empty() {
                rule.push_str(&format!("({})", head_args.join(",")));
            }
            rule.push_str(" :- ");
            let mut body = Vec::new();
            // Ensure range restriction: one positive atom with all vars.
            body.push(format!("B{r}(x,y,z)"));
            if next() % 2 == 0 {
                body.push(format!("!C{r}(x)"));
            }
            if next() % 2 == 0 {
                body.push("x != y".to_string());
            }
            rule.push_str(&body.join(", "));
            rule.push('.');
            src.push_str(&rule);
            src.push('\n');
        }
        let mut i1 = Interner::new();
        let p1 = parse_program(&src, &mut i1).unwrap();
        let shown1 = p1.display(&i1).to_string();
        let mut i2 = Interner::new();
        let p2 = parse_program(&shown1, &mut i2).unwrap();
        let shown2 = p2.display(&i2).to_string();
        prop_assert_eq!(shown1, shown2);
    }
}

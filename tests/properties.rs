//! Property-style tests of the core invariants: oracle agreement on
//! random graphs, monotonicity of Datalog, inflationary growth,
//! 3-valued model containment, orientation validity, and parser
//! round-tripping.
//!
//! Formerly proptest-based; rewritten as seeded deterministic loops so
//! the suite builds offline with no external dependencies. Each
//! property samples a fixed number of pseudo-random cases from
//! [`Rng`], so failures reproduce exactly.

use unchained::common::{Instance, Interner, Rng, Tuple, Value};
use unchained::core::{inflationary, naive, seminaive, stratified, wellfounded, EvalOptions};
use unchained::harness::oracles;
use unchained::harness::programs;
use unchained::nondet::{run_once, NondetProgram, RandomChooser};
use unchained::parser::parse_program;

/// A pseudo-random edge set over `0..max_node` with at most
/// `max_edges` (possibly duplicate) entries.
fn random_edges(rng: &mut Rng, max_node: i64, max_edges: usize) -> Vec<(i64, i64)> {
    let count = rng.gen_index(max_edges + 1);
    (0..count)
        .map(|_| {
            (
                rng.gen_range_i64(0, max_node),
                rng.gen_range_i64(0, max_node),
            )
        })
        .collect()
}

fn graph_instance(interner: &mut Interner, edges: &[(i64, i64)]) -> Instance {
    let g = interner.intern("G");
    let mut instance = Instance::new();
    instance.ensure(g, 2);
    for &(a, b) in edges {
        instance.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    instance
}

/// Semi-naive and naive evaluation compute the same minimum model.
#[test]
fn seminaive_equals_naive() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 7, 20);
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let a = naive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let b = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
    }
}

/// The Datalog TC answer equals the BFS oracle.
#[test]
fn tc_matches_oracle() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 8, 24);
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(
            run.instance
                .relation(t)
                .unwrap()
                .same_tuples(&oracles::transitive_closure(&input, g)),
            "seed {seed}"
        );
    }
}

/// Monotonicity of pure Datalog: adding edges never removes answers.
#[test]
fn datalog_is_monotone() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 15);
        let extra = (rng.gen_range_i64(0, 6), rng.gen_range_i64(0, 6));
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let mut bigger = input.clone();
        bigger.insert_fact(g, Tuple::from([Value::Int(extra.0), Value::Int(extra.1)]));
        let small = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let large = seminaive::minimum_model(&program, &bigger, EvalOptions::default()).unwrap();
        for tuple in small.instance.relation(t).unwrap().iter() {
            assert!(large.instance.contains_fact(t, tuple), "seed {seed}");
        }
    }
}

/// Inflationary stages grow monotonically: the final instance contains
/// the input, and the answer under a pure-Datalog program equals the
/// minimum model.
#[test]
fn inflationary_contains_input() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 15);
        let mut i = Interner::new();
        let program = parse_program(programs::TC, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        for tuple in input.relation(g).unwrap().iter() {
            assert!(run.instance.contains_fact(g, tuple), "seed {seed}");
        }
        let mm = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(run.instance.same_facts(&mm.instance), "seed {seed}");
    }
}

/// The semi-naive inflationary engine is stage-exact with the naive
/// one on random inputs of the win program.
#[test]
fn inflationary_seminaive_stage_exact() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 14);
        let mut i = Interner::new();
        let program = parse_program(programs::WIN, &mut i).unwrap();
        let moves = i.intern("moves");
        let mut input = Instance::new();
        input.ensure(moves, 2);
        for &(a, b) in &es {
            input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let a = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = inflationary::eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
        assert_eq!(a.stages, b.stages, "seed {seed}");
    }
}

/// 3-valued containment: true facts ⊆ possible facts, and the model is
/// consistent with the game oracle on win-move inputs.
#[test]
fn wellfounded_true_subset_of_possible() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 14);
        let mut i = Interner::new();
        let program = parse_program(programs::WIN, &mut i).unwrap();
        // Reuse the edge set as a `moves` relation.
        let moves = i.intern("moves");
        let mut input = Instance::new();
        input.ensure(moves, 2);
        for &(a, b) in &es {
            input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let model = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        let win = i.get("win").unwrap();
        if let Some(rel) = model.true_facts.relation(win) {
            for t in rel.iter() {
                assert!(model.possible_facts.contains_fact(win, t), "seed {seed}");
            }
        }
        // Consistency with the oracle.
        let solution = oracles::solve_game(&input, moves);
        for (&state, &value) in &solution {
            let truth = model.truth(win, &Tuple::from([state]));
            let expected = match value {
                oracles::GameValue::Win => wellfounded::Truth::True,
                oracles::GameValue::Lose => wellfounded::Truth::False,
                oracles::GameValue::Draw => wellfounded::Truth::Unknown,
            };
            assert_eq!(truth, expected, "seed {seed}");
        }
    }
}

/// The stratified CTC answer partitions adom² with the TC answer.
#[test]
fn ctc_partitions_square() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 14);
        let mut i = Interner::new();
        let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let t = i.get("T").unwrap();
        let ct = i.get("CT").unwrap();
        let run = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        let n = input.adom().len();
        let t_rel = run.instance.relation(t).unwrap();
        let ct_rel = run.instance.relation(ct).unwrap();
        assert_eq!(t_rel.len() + ct_rel.len(), n * n, "seed {seed}");
        for tuple in t_rel.iter() {
            assert!(!ct_rel.contains(tuple), "seed {seed}");
        }
    }
}

/// Every nondeterministic orientation run yields a valid orientation,
/// for every seed.
#[test]
fn orientation_runs_always_valid() {
    for seed in 0..64u64 {
        let mut rng = Rng::seeded(seed);
        let es = random_edges(&mut rng, 6, 12);
        let chooser_seed = rng.next_u64();
        let mut i = Interner::new();
        let program = parse_program(programs::ORIENTATION, &mut i).unwrap();
        let input = graph_instance(&mut i, &es);
        let g = i.get("G").unwrap();
        let original = input.relation(g).unwrap().clone();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut chooser = RandomChooser::seeded(chooser_seed);
        let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
        // Self-loops are their own reverse and cannot be oriented, so
        // exclude graphs with self-loops from the validity check — the
        // program deletes them outright (G(x,x),G(x,x) matches).
        if es.iter().all(|&(a, b)| a != b) {
            assert!(
                oracles::is_valid_orientation(&original, run.instance.relation(g).unwrap()),
                "seed {seed}"
            );
        }
    }
}

/// Parser round-trip: display of a parsed program reparses to the same
/// display.
#[test]
fn parser_display_roundtrip() {
    for seed in 0..200u64 {
        let mut rng = Rng::seeded(seed);
        let n_rules = 1 + rng.gen_index(5);
        let mut src = String::new();
        for r in 0..n_rules {
            let head_arity = rng.gen_index(3);
            let vars = ["x", "y", "z"];
            let head_args: Vec<&str> = (0..head_arity).map(|k| vars[k]).collect();
            let mut rule = format!("H{r}");
            if !head_args.is_empty() {
                rule.push_str(&format!("({})", head_args.join(",")));
            }
            rule.push_str(" :- ");
            let mut body = Vec::new();
            // Ensure range restriction: one positive atom with all vars.
            body.push(format!("B{r}(x,y,z)"));
            if rng.gen_bool(0.5) {
                body.push(format!("!C{r}(x)"));
            }
            if rng.gen_bool(0.5) {
                body.push("x != y".to_string());
            }
            rule.push_str(&body.join(", "));
            rule.push('.');
            src.push_str(&rule);
            src.push('\n');
        }
        let mut i1 = Interner::new();
        let p1 = parse_program(&src, &mut i1).unwrap();
        let shown1 = p1.display(&i1).to_string();
        let mut i2 = Interner::new();
        let p2 = parse_program(&shown1, &mut i2).unwrap();
        let shown2 = p2.display(&i2).to_string();
        assert_eq!(shown1, shown2, "seed {seed}");
    }
}

//! Differential testing of the engine equivalences on *randomly
//! generated programs* — the theorems say the engines agree on every
//! program of a fragment, so we compare them on programs nobody
//! hand-picked (seeded, deterministic).

use unchained::common::Interner;
use unchained::core::{
    inflationary, naive, noninflationary, seminaive, stratified, wellfounded, EvalOptions,
};
use unchained::harness::randprog::{random_edb, random_program, Fragment, RandProgConfig};
use unchained::nondet::{effect, EffOptions, NondetProgram};

const SEEDS: std::ops::Range<u64> = 0..40;

#[test]
fn naive_equals_seminaive_on_random_positive_programs() {
    for seed in SEEDS {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Positive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xABCD);
        let a = naive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let b = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
    }
}

#[test]
fn inflationary_naive_equals_seminaive_on_random_datalog_neg() {
    for seed in SEEDS {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::DatalogNeg,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0x1234);
        let a = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = inflationary::eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
        assert_eq!(a.stages, b.stages, "seed {seed}");
    }
}

#[test]
fn stratified_equals_wellfounded_on_random_semipositive_programs() {
    for seed in SEEDS {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Semipositive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0x77);
        let a = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        let wf = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(wf.is_total(), "seed {seed}");
        assert!(a.instance.same_facts(&wf.true_facts), "seed {seed}");
    }
}

#[test]
fn datalog_negneg_engine_subsumes_inflationary_on_random_programs() {
    for seed in SEEDS {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::DatalogNeg,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xFEED);
        let a = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = noninflationary::eval(
            &program,
            &input,
            noninflationary::ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
    }
}

#[test]
fn nondet_effect_is_singleton_minimum_model_on_random_positive_programs() {
    // Effects explode combinatorially, so keep programs and inputs tiny.
    for seed in 0..12u64 {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Positive,
            rules: 2,
            idb_preds: 1,
            edb_preds: 2,
            max_body: 2,
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 3, 2, seed ^ 0x5A5A);
        let expected = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = match effect(&compiled, &input, EffOptions { max_states: 20_000 }) {
            Ok(e) => e,
            Err(_) => continue, // state budget: skip this seed
        };
        assert_eq!(effects.len(), 1, "seed {seed}");
        assert!(effects[0].same_facts(&expected.instance), "seed {seed}");
    }
}

#[test]
fn wellfounded_true_facts_subset_of_inflationary_on_random_programs() {
    // Both realize the fixpoint queries, but on a *given* Datalog¬
    // program the two semantics differ; what must hold is that the
    // WF-true facts are contained in the inflationary result whenever
    // the program is semipositive (where both equal stratified).
    for seed in SEEDS {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::Semipositive,
            ..Default::default()
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 5, 6, seed ^ 0xC0DE);
        let wf = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        let strat = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        for (pred, rel) in wf.true_facts.iter() {
            for t in rel.iter() {
                assert!(strat.instance.contains_fact(pred, t), "seed {seed}");
            }
        }
    }
}

/// Deep fuzz run (hundreds of seeds, larger programs). Not part of the
/// default suite; run with `cargo test --test differential -- --ignored`.
#[test]
#[ignore = "long-running deep fuzz; run explicitly"]
fn deep_differential_fuzz() {
    for seed in 0..400u64 {
        let mut i = Interner::new();
        let cfg = RandProgConfig {
            fragment: Fragment::DatalogNeg,
            rules: 6,
            idb_preds: 3,
            edb_preds: 2,
            max_body: 4,
        };
        let program = random_program(&mut i, cfg, seed);
        let input = random_edb(&mut i, cfg, 6, 8, seed ^ 0xDEED);
        let a = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        let b = inflationary::eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance), "seed {seed}");
        assert_eq!(a.stages, b.stages, "seed {seed}");
        let c = noninflationary::eval(
            &program,
            &input,
            noninflationary::ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(a.instance.same_facts(&c.instance), "seed {seed}");
    }
}

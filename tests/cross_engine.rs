//! Cross-engine equivalence matrix: the paper's expressiveness theorems
//! imply concrete agreements between engines on shared language
//! fragments; this file checks them over instance families.

use unchained::common::{Instance, Interner, Tuple, Value};
use unchained::core::{
    inflationary, invention, naive, noninflationary, seminaive, stratified, wellfounded,
    EvalOptions,
};
use unchained::fo::{FoTerm, Formula, VarSet};
use unchained::harness::generators::{cycle_graph, line_graph, random_digraph};
use unchained::harness::programs;
use unchained::nondet::{effect, EffOptions, NondetProgram};
use unchained::parser::parse_program;
use unchained::while_lang::{run as run_while, Assignment, LoopCondition, Stmt, WhileProgram};

fn family(i: &mut Interner) -> Vec<Instance> {
    let mut out = Vec::new();
    for n in [1i64, 2, 3, 5, 7] {
        out.push(line_graph(i, "G", n));
    }
    for n in [2i64, 4, 6] {
        out.push(cycle_graph(i, "G", n));
    }
    for seed in 0..5u64 {
        out.push(random_digraph(i, "G", 6, 0.3, seed));
    }
    out
}

/// On pure Datalog, *every* deterministic engine computes the minimum
/// model: naive, semi-naive, stratified, inflationary, well-founded
/// (total), Datalog¬¬, Datalog¬new (no inventing rules), and the
/// single-effect nondeterministic run.
#[test]
fn all_engines_agree_on_pure_datalog() {
    let mut i = Interner::new();
    let program = parse_program(programs::TC, &mut i).unwrap();
    for (idx, input) in family(&mut i).iter().enumerate() {
        let reference = naive::minimum_model(&program, input, EvalOptions::default()).unwrap();
        let semi = seminaive::minimum_model(&program, input, EvalOptions::default()).unwrap();
        assert!(
            reference.instance.same_facts(&semi.instance),
            "seminaive #{idx}"
        );
        let strat = stratified::eval(&program, input, EvalOptions::default()).unwrap();
        assert!(
            reference.instance.same_facts(&strat.instance),
            "stratified #{idx}"
        );
        let infl = inflationary::eval(&program, input, EvalOptions::default()).unwrap();
        assert!(
            reference.instance.same_facts(&infl.instance),
            "inflationary #{idx}"
        );
        let wf = wellfounded::eval(&program, input, EvalOptions::default()).unwrap();
        assert!(wf.is_total(), "wf total #{idx}");
        assert!(
            reference.instance.same_facts(&wf.true_facts),
            "wellfounded #{idx}"
        );
        let nn = noninflationary::eval(
            &program,
            input,
            noninflationary::ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(
            reference.instance.same_facts(&nn.instance),
            "datalog¬¬ #{idx}"
        );
        let inv = invention::eval(&program, input, EvalOptions::default()).unwrap();
        assert!(
            reference.instance.same_facts(&inv.instance),
            "datalog¬new #{idx}"
        );
        // Exhaustive effect enumeration explores every firing order, so
        // its state space is exponential in the number of derivable
        // facts; only check the smallest inputs.
        if input.fact_count() <= 4 {
            let compiled = NondetProgram::compile(&program, false).unwrap();
            let effects = effect(&compiled, input, EffOptions::default()).unwrap();
            assert_eq!(effects.len(), 1, "deterministic effect #{idx}");
            assert!(
                reference.instance.same_facts(&effects[0]),
                "nondet effect #{idx}"
            );
        }
    }
}

/// On stratified Datalog¬, the stratified, well-founded (2-valued) and
/// — for this particular stratum structure — inflationary engines
/// agree. (Inflationary evaluation of a stratified program does NOT
/// coincide in general; the CTC program is a known counterexample,
/// which we also assert.)
#[test]
fn stratified_vs_wellfounded_on_stratified_programs() {
    let mut i = Interner::new();
    let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    for (idx, input) in family(&mut i).iter().enumerate() {
        let strat = stratified::eval(&program, input, EvalOptions::default()).unwrap();
        let wf = wellfounded::eval(&program, input, EvalOptions::default()).unwrap();
        assert!(wf.is_total(), "#{idx}");
        assert!(strat.instance.same_facts(&wf.true_facts), "#{idx}");
    }
}

/// Inflationary evaluation of the *unmodified* stratified CTC program
/// differs from stratified semantics (the CT rule fires too early) —
/// this is exactly why Example 4.3 needs the delay technique.
#[test]
fn inflationary_needs_the_delay_technique() {
    let mut i = Interner::new();
    let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let input = line_graph(&mut i, "G", 4);
    let ct = i.get("CT").unwrap();
    let strat = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
    let infl = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
    // The inflationary run derives CT(0,2) at stage 2 (before T(0,2)
    // appears), which stratified semantics excludes.
    assert!(infl
        .instance
        .contains_fact(ct, &Tuple::from([Value::Int(0), Value::Int(2)])));
    assert!(!strat
        .instance
        .contains_fact(ct, &Tuple::from([Value::Int(0), Value::Int(2)])));
    assert!(!infl
        .instance
        .relation(ct)
        .unwrap()
        .same_tuples(strat.instance.relation(ct).unwrap()));
}

/// Theorem 4.2's two directions on a concrete query: the while-language
/// *fixpoint* program and the inflationary Datalog¬ program for
/// good-nodes coincide everywhere.
#[test]
fn fixpoint_program_equals_inflationary_datalog() {
    let mut i = Interner::new();
    let datalog = parse_program(programs::GOOD_TIMESTAMP, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let good = i.get("good").unwrap();
    let good_w = i.intern("goodW");
    let mut vs = VarSet::new();
    let (x, y) = (vs.var("x"), vs.var("y"));
    let while_prog = WhileProgram::new(vec![Stmt::While {
        condition: LoopCondition::Change,
        body: vec![Stmt::Assign {
            target: good_w,
            vars: vec![x],
            formula: Formula::forall(
                [y],
                Formula::Atom(g, vec![FoTerm::Var(y), FoTerm::Var(x)])
                    .implies(Formula::Atom(good_w, vec![FoTerm::Var(y)])),
            ),
            mode: Assignment::Cumulate,
        }],
    }]);
    assert!(while_prog.is_fixpoint());
    for (idx, input) in family(&mut i).iter().enumerate() {
        let a = inflationary::eval(&datalog, input, EvalOptions::default()).unwrap();
        let b = run_while(&while_prog, input, 100_000, None).unwrap();
        let got_a = a.instance.relation(good).unwrap();
        let got_b = b.instance.relation(good_w).unwrap();
        assert!(got_a.same_tuples(got_b), "instance #{idx}");
    }
}

/// Theorem 4.8's two sides on a concrete query: the deletion-based
/// Datalog¬¬ program for `P − π_A(Q)` and the while-language program
/// with destructive assignment compute the same relation.
#[test]
fn datalog_negneg_equals_while_on_difference_query() {
    let mut i = Interner::new();
    let dl = parse_program("answer(x) :- P(x). !answer(x) :- Q(x,y).", &mut i).unwrap();
    let (wl, _) = unchained::while_lang::parse_while_program(
        "answerW := { x | P(x) & !exists y (Q(x,y)) };",
        &mut i,
    )
    .unwrap();
    let p = i.get("P").unwrap();
    let q = i.get("Q").unwrap();
    let answer = i.get("answer").unwrap();
    let answer_w = i.get("answerW").unwrap();
    for seed in 0..10u64 {
        let mut input = Instance::new();
        input.ensure(p, 1);
        input.ensure(q, 2);
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 6) as i64
        };
        for _ in 0..5 {
            input.insert_fact(p, Tuple::from([Value::Int(next())]));
        }
        for _ in 0..3 {
            input.insert_fact(q, Tuple::from([Value::Int(next()), Value::Int(next())]));
        }
        let a = noninflationary::eval(
            &dl,
            &input,
            noninflationary::ConflictPolicy::PreferNegative,
            EvalOptions::default(),
        )
        .unwrap();
        let b = unchained::while_lang::run(&wl, &input, 1000, None).unwrap();
        assert!(
            a.instance
                .relation(answer)
                .unwrap()
                .same_tuples(b.instance.relation(answer_w).unwrap()),
            "seed {seed}"
        );
    }
}

/// The four Datalog¬¬ conflict policies coincide on conflict-free
/// programs.
#[test]
fn conflict_policies_agree_without_conflicts() {
    let mut i = Interner::new();
    let program = parse_program(
        "alive(x) :- node(x).\n\
         !alive(x) :- kill(x).",
        &mut i,
    )
    .unwrap();
    let node = i.get("node").unwrap();
    let kill = i.get("kill").unwrap();
    let mut input = Instance::new();
    for k in 0..5 {
        input.insert_fact(node, Tuple::from([Value::Int(k)]));
    }
    input.insert_fact(kill, Tuple::from([Value::Int(3)]));
    // alive(3) is inferred and killed in the same firing — a genuine
    // conflict, so policies diverge; removing node 3 removes it.
    use noninflationary::ConflictPolicy::*;
    let pp =
        noninflationary::eval(&program, &input, PreferPositive, EvalOptions::default()).unwrap();
    let alive = i.get("alive").unwrap();
    assert_eq!(pp.instance.relation(alive).unwrap().len(), 5); // insert wins
    let pn =
        noninflationary::eval(&program, &input, PreferNegative, EvalOptions::default()).unwrap();
    assert_eq!(pn.instance.relation(alive).unwrap().len(), 4); // delete wins

    // Conflict-free version: node 3 absent.
    let mut clean = Instance::new();
    for k in 0..5 {
        if k != 3 {
            clean.insert_fact(node, Tuple::from([Value::Int(k)]));
        }
    }
    clean.insert_fact(kill, Tuple::from([Value::Int(3)]));
    let runs: Vec<Instance> = [PreferPositive, PreferNegative, NoOp, Undefined]
        .into_iter()
        .map(|p| {
            noninflationary::eval(&program, &clean, p, EvalOptions::default())
                .unwrap()
                .instance
        })
        .collect();
    for r in &runs[1..] {
        assert!(runs[0].same_facts(r));
    }
}

/// Genericity: all deterministic engines commute with renaming of
/// domain constants (the paper's genericity condition on queries).
#[test]
fn engines_are_generic_under_isomorphism() {
    let mut i = Interner::new();
    let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let ct = i.get("CT").unwrap();
    let input = random_digraph(&mut i, "G", 6, 0.3, 99);
    // Rename k ↦ k + 1000.
    let rename = |v: Value| match v {
        Value::Int(k) => Value::Int(k + 1000),
        other => other,
    };
    let mut renamed = Instance::new();
    for t in input.relation(g).unwrap().iter() {
        renamed.insert_fact(g, Tuple::from([rename(t[0]), rename(t[1])]));
    }
    let a = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
    let b = stratified::eval(&program, &renamed, EvalOptions::default()).unwrap();
    let mut a_renamed = unchained::common::Relation::new(2);
    for t in a.instance.relation(ct).unwrap().iter() {
        a_renamed.insert(Tuple::from([rename(t[0]), rename(t[1])]));
    }
    assert!(a_renamed.same_tuples(b.instance.relation(ct).unwrap()));
}

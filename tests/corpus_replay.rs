//! Replays every checked-in repro under `tests/corpus/` through the
//! differential oracle. The corpus holds two kinds of entries: seeded
//! regression witnesses for storage bugs fixed in earlier revisions
//! (cross-clone version aliasing, epoch-fork cache keying) and any
//! minimal repros the fuzzer's shrinker writes when a real divergence
//! is found. Either way the contract is the same — once a program is in
//! the corpus, every engine must agree on it forever.

use std::path::PathBuf;

use unchained::common::Interner;
use unchained::fuzz::corpus::{corpus_files, load};
use unchained::fuzz::oracle::check;
use unchained::fuzz::Fault;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_without_divergence() {
    let files = corpus_files(&corpus_dir());
    assert!(
        !files.is_empty(),
        "tests/corpus must hold at least the seeded regression witnesses"
    );
    for dl in files {
        let mut interner = Interner::new();
        let repro = load(&dl, &mut interner)
            .unwrap_or_else(|e| panic!("corpus entry {} must parse: {e}", dl.display()));
        let campaign = repro.campaign.unwrap_or_else(|| {
            panic!(
                "corpus entry {} must record `% campaign: <name>` in its header",
                dl.display()
            )
        });
        let outcome = check(
            campaign,
            &repro.program,
            &repro.instance,
            &mut interner,
            0,
            Fault::None,
        );
        assert!(
            !outcome.skipped,
            "corpus entry {} must exercise the oracle, not skip",
            dl.display()
        );
        assert!(
            outcome.divergence.is_none(),
            "corpus entry {} regressed: {:?}",
            dl.display(),
            outcome.divergence
        );
    }
}

/// Every corpus `.dl` file must survive a print → parse round trip: the
/// shrinker emits normalized programs, and hand-seeded entries must obey
/// the same fixed-point convention so the corpus stays canonical.
#[test]
fn corpus_entries_are_print_parse_fixed_points() {
    for dl in corpus_files(&corpus_dir()) {
        let mut interner = Interner::new();
        let repro = load(&dl, &mut interner).expect("corpus entry parses");
        let printed = repro.program.display(&interner).to_string();
        let reparsed = unchained::parser::parse_program(&printed, &mut interner)
            .unwrap_or_else(|e| panic!("printed corpus entry {} must reparse: {e}", dl.display()));
        assert_eq!(
            repro.program,
            reparsed,
            "corpus entry {} is not print/parse canonical",
            dl.display()
        );
    }
}

//! End-to-end reproduction of every worked example in the paper,
//! through the public facade crate.

use unchained::common::{Instance, Interner, Relation, Tuple, Value};
use unchained::core::{
    inflationary, invention, noninflationary, seminaive, stratified, wellfounded, EvalError,
    EvalOptions,
};
use unchained::harness::generators::{line_graph, paper_game};
use unchained::harness::oracles;
use unchained::harness::programs;
use unchained::nondet::{effect, EffOptions, NondetProgram};
use unchained::parser::parse_program;

/// §3.1 — transitive closure under minimum-model semantics.
#[test]
fn section_3_1_transitive_closure() {
    let mut i = Interner::new();
    let program = parse_program(programs::TC, &mut i).unwrap();
    let input = line_graph(&mut i, "G", 6);
    let g = i.get("G").unwrap();
    let t = i.get("T").unwrap();
    let run = seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
    assert!(run
        .instance
        .relation(t)
        .unwrap()
        .same_tuples(&oracles::transitive_closure(&input, g)));
}

/// §3.2 — complement of transitive closure under stratified semantics.
#[test]
fn section_3_2_stratified_complement() {
    let mut i = Interner::new();
    let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let input = line_graph(&mut i, "G", 5);
    let g = i.get("G").unwrap();
    let ct = i.get("CT").unwrap();
    let run = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
    let expected = oracles::complement_tc(&input, g, &input.adom_sorted());
    assert!(run.instance.relation(ct).unwrap().same_tuples(&expected));
}

/// Example 3.2 — the win-move game: the paper's exact 3-valued answer.
#[test]
fn example_3_2_win_move_exact_answer() {
    let mut i = Interner::new();
    let program = parse_program(programs::WIN, &mut i).unwrap();
    let input = paper_game(&mut i, "moves");
    let win = i.get("win").unwrap();
    let model = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
    let truth = |name: &str, i: &mut Interner| {
        let v = Value::sym(i, name);
        model.truth(win, &Tuple::from([v]))
    };
    use wellfounded::Truth::*;
    assert_eq!(truth("d", &mut i), True);
    assert_eq!(truth("f", &mut i), True);
    assert_eq!(truth("e", &mut i), False);
    assert_eq!(truth("g", &mut i), False);
    assert_eq!(truth("a", &mut i), Unknown);
    assert_eq!(truth("b", &mut i), Unknown);
    assert_eq!(truth("c", &mut i), Unknown);
}

/// Example 4.1 — closer: stages encode shortest-path distance.
#[test]
fn example_4_1_closer_matches_distance_oracle() {
    let mut i = Interner::new();
    let program = parse_program(programs::CLOSER, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let closer = i.get("closer").unwrap();
    // A branching graph exercises incomparable and infinite distances.
    let mut input = Instance::new();
    let v = Value::Int;
    for (a, b) in [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2), (5, 0)] {
        input.insert_fact(g, Tuple::from([v(a), v(b)]));
    }
    let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
    let rel = run.instance.relation(closer).unwrap();
    let dist = oracles::distances(&input, g);
    let dom = input.adom_sorted();
    for &a in &dom {
        for &b in &dom {
            for &c in &dom {
                for &e in &dom {
                    let da = dist.get(&(a, b)).copied().unwrap_or(u64::MAX);
                    let db = dist.get(&(c, e)).copied().unwrap_or(u64::MAX);
                    assert_eq!(
                        rel.contains(&Tuple::from([a, b, c, e])),
                        da < db,
                        "closer({a:?},{b:?},{c:?},{e:?})"
                    );
                }
            }
        }
    }
}

/// Example 4.3 — the delayed-firing complement program equals the
/// stratified complement on nonempty graphs.
#[test]
fn example_4_3_delayed_complement() {
    let mut i = Interner::new();
    let delayed = parse_program(programs::CTC_INFLATIONARY, &mut i).unwrap();
    let strat = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let ct = i.get("CT").unwrap();
    for n in [2i64, 3, 4, 7] {
        let input = line_graph(&mut i, "G", n);
        let a = inflationary::eval(&delayed, &input, EvalOptions::default()).unwrap();
        let b = stratified::eval(&strat, &input, EvalOptions::default()).unwrap();
        assert!(
            a.instance
                .relation(ct)
                .unwrap()
                .same_tuples(b.instance.relation(ct).unwrap()),
            "n = {n}"
        );
    }
}

/// Example 4.4 — the timestamped `good` program equals the
/// cycle-unreachability oracle.
#[test]
fn example_4_4_timestamped_good() {
    let mut i = Interner::new();
    let program = parse_program(programs::GOOD_TIMESTAMP, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let good = i.get("good").unwrap();
    // Mix of cycle, tail, and independent DAG.
    let mut input = Instance::new();
    let v = Value::Int;
    for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4), (6, 7), (7, 8), (6, 8)] {
        input.insert_fact(g, Tuple::from([v(a), v(b)]));
    }
    let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
    let got = run
        .instance
        .relation(good)
        .cloned()
        .unwrap_or_else(|| Relation::new(1));
    assert!(got.same_tuples(&oracles::good_nodes(&input, g)));
}

/// §4.2 — the flip-flop program diverges (period-2 cycle) on `T(0)`.
#[test]
fn section_4_2_flip_flop() {
    let mut i = Interner::new();
    let program = parse_program(programs::FLIP_FLOP, &mut i).unwrap();
    let t = i.get("T").unwrap();
    let mut input = Instance::new();
    input.insert_fact(t, Tuple::from([Value::Int(0)]));
    let err = noninflationary::eval(
        &program,
        &input,
        noninflationary::ConflictPolicy::PreferPositive,
        EvalOptions::default(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        EvalError::Diverged {
            stage: 2,
            period: 2
        }
    );
}

/// §4.3 — value invention: object creation per edge, dereferencable by
/// later rules, with the safety restriction checkable.
#[test]
fn section_4_3_value_invention() {
    let mut i = Interner::new();
    let program = parse_program(
        "EdgeObj(o, x, y) :- G(x,y).\n\
         Endpoint(o, x) :- EdgeObj(o, x, y).\n\
         Endpoint(o, y) :- EdgeObj(o, x, y).",
        &mut i,
    )
    .unwrap();
    let input = line_graph(&mut i, "G", 4);
    let run = invention::eval(&program, &input, EvalOptions::default()).unwrap();
    assert_eq!(run.invented, 3);
    let endpoint = i.get("Endpoint").unwrap();
    assert_eq!(run.instance.relation(endpoint).unwrap().len(), 6);
    assert!(!run.is_safe_answer(endpoint)); // contains object ids
}

/// §5.1 — orientation: every effect is a valid orientation and all
/// orientations appear.
#[test]
fn section_5_1_orientation_effects() {
    let mut i = Interner::new();
    let program = parse_program(programs::ORIENTATION, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    let v = Value::Int;
    for (a, b) in [(1, 2), (2, 1), (3, 4), (4, 3), (9, 1)] {
        input.insert_fact(g, Tuple::from([v(a), v(b)]));
    }
    let original = input.relation(g).unwrap().clone();
    let compiled = NondetProgram::compile(&program, false).unwrap();
    let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
    assert_eq!(effects.len(), 4);
    for e in &effects {
        assert!(oracles::is_valid_orientation(
            &original,
            e.relation(g).unwrap()
        ));
    }
}

/// Examples 5.4 / 5.5 — P − π_A(Q): correct in the three
/// control-extended languages, incorrect on some effect of the naive
/// two-rule composition in N-Datalog¬.
#[test]
fn examples_5_4_5_5_difference_query() {
    let mut i = Interner::new();
    let p = i.intern("P");
    let q = i.intern("Q");
    let v = Value::Int;
    let mut input = Instance::new();
    for k in 0..4 {
        input.insert_fact(p, Tuple::from([v(k)]));
    }
    input.insert_fact(q, Tuple::from([v(2), v(7)]));
    let mut expected = Relation::new(1);
    for k in [0i64, 1, 3] {
        expected.insert(Tuple::from([v(k)]));
    }

    for src in [
        programs::DIFF_FORALL,
        programs::DIFF_BOTTOM,
        programs::DIFF_NNEGNEG,
    ] {
        let program = parse_program(src, &mut i).unwrap();
        let answer = i.get("answer").unwrap();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        assert!(!effects.is_empty());
        for e in &effects {
            let got = e
                .relation(answer)
                .cloned()
                .unwrap_or_else(|| Relation::new(1));
            assert!(got.same_tuples(&expected), "program:\n{src}");
        }
    }

    // Naive composition: at least one effect computes the wrong answer
    // (answer(2) sneaks in when the answer rule fires before T(2)).
    let naive = parse_program(programs::DIFF_NAIVE_COMPOSITION, &mut i).unwrap();
    let answer = i.get("answer").unwrap();
    let compiled = NondetProgram::compile(&naive, false).unwrap();
    let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
    assert!(effects.iter().any(|e| {
        !e.relation(answer)
            .cloned()
            .unwrap_or_else(|| Relation::new(1))
            .same_tuples(&expected)
    }));
}

/// Theorem 4.7 — evenness on ordered databases across the three
/// deterministic engines.
#[test]
fn theorem_4_7_evenness_on_ordered_databases() {
    let mut i = Interner::new();
    let program = parse_program(programs::EVEN_SEMIPOSITIVE, &mut i).unwrap();
    let even = i.get("even").unwrap();
    for k in 0..7usize {
        let members: Vec<i64> = (0..k as i64).map(|x| 3 * x).collect();
        let input = unchained::harness::ordered::evenness_input(&mut i, "R", 25, &members);
        let expected = k % 2 == 0;
        let s = stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        assert_eq!(
            s.instance.contains_fact(even, &Tuple::from([])),
            expected,
            "strat k={k}"
        );
        let f = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        assert_eq!(
            f.instance.contains_fact(even, &Tuple::from([])),
            expected,
            "infl k={k}"
        );
        let w = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        assert_eq!(
            w.truth(even, &Tuple::from([])) == wellfounded::Truth::True,
            expected,
            "wf k={k}"
        );
    }
}

//! # unchained
//!
//! A family of Datalog engines with declarative and forward-chaining
//! (procedural) semantics, reproducing the languages surveyed in
//! *Datalog Unchained* (Victor Vianu, PODS 2021).
//!
//! This facade crate re-exports the workspace crates under stable names:
//!
//! * [`common`] — relational substrate (values, tuples, relations, instances)
//! * [`fo`] — relational algebra and first-order (calculus) evaluation
//! * [`parser`] — Datalog syntax, AST and program analysis
//! * [`core`] — the deterministic semantics family (naive, semi-naive,
//!   stratified, well-founded, inflationary, Datalog¬¬, Datalog¬new)
//! * [`nondet`] — the nondeterministic semantics family (N-Datalog¬(¬),
//!   N-Datalog¬⊥, N-Datalog¬∀, N-Datalog¬new, poss/cert)
//! * [`while_lang`] — the imperative while / fixpoint comparator languages
//! * [`exchange`] — peer-to-peer data exchange with forward-chaining
//!   rules (Webdamlog-style, Section 6)
//! * [`harness`] — workload generators, oracles and the equivalence harness
//! * [`bench`] — the in-repo benchmark harness (workload registry,
//!   BENCH.json emitter, baseline comparator)
//! * [`fuzz`] — deterministic differential fuzzing (campaign oracle
//!   matrix, delta-debugging shrinker, repro corpus, FUZZ.json)
pub use unchained_bench as bench;
pub use unchained_common as common;
pub use unchained_core as core;
pub use unchained_exchange as exchange;
pub use unchained_fo as fo;
pub use unchained_fuzz as fuzz;
pub use unchained_harness as harness;
pub use unchained_nondet as nondet;
pub use unchained_parser as parser;
pub use unchained_while as while_lang;

#!/usr/bin/env sh
# The pre-PR gate: build, test, formatting, and a benchmark-harness
# smoke — fully offline. The workspace has no external dependencies,
# so everything here must pass without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

# Benchmark harness smoke: a quick run must produce a valid BENCH.json,
# and comparing a second run against it must exit 0. The threshold is
# deliberately loose (10x) — this gates the harness and the
# deterministic work gauges, not machine-dependent wall times.
echo "==> bench --quick smoke + baseline self-comparison"
mkdir -p target
cargo run -q --release -p unchained-bench -- --quick --json target/bench-smoke.json >/dev/null
cargo run -q --release -p unchained-bench -- --quick --baseline target/bench-smoke.json \
    --threshold 10 >/dev/null

echo "All checks passed."

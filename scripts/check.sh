#!/usr/bin/env sh
# The pre-PR gate: build, test, formatting, and a benchmark-harness
# smoke — fully offline. The workspace has no external dependencies,
# so everything here must pass without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Second pass with the parallel executor as the suite-wide default:
# every engine test must produce identical results at 4 workers.
echo "==> cargo test --workspace -q (UNCHAINED_THREADS=4)"
UNCHAINED_THREADS=4 cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

# Benchmark harness smoke: a quick run must produce a valid BENCH.json,
# and comparing a second run against it must exit 0. The threshold is
# deliberately loose (10x) — this gates the harness and the
# deterministic work gauges, not machine-dependent wall times.
echo "==> bench --quick smoke + baseline self-comparison"
mkdir -p target
cargo run -q --release -p unchained-bench -- --quick --json target/bench-smoke.json >/dev/null
cargo run -q --release -p unchained-bench -- --quick --baseline target/bench-smoke.json \
    --threshold 10 >/dev/null

# Index-maintenance invariant: on chain TC the semi-naive engine must
# absorb each round's committed segment instead of rebuilding, so the
# committed BENCH.json's sequential chain/seminaive entry keeps
# index_rebuilds bounded by the relation count (2: G and T), not the
# round count (64).
echo "==> BENCH.json index_rebuilds bounded on chain TC"
rebuilds=$(grep '"workload":"chain","engine":"seminaive","threads":1' BENCH.json \
    | sed 's/.*"index_rebuilds":\([0-9]*\).*/\1/')
if [ -z "$rebuilds" ]; then
    echo "chain/seminaive (threads:1) entry missing from BENCH.json" >&2
    exit 1
fi
if [ "$rebuilds" -gt 2 ]; then
    echo "chain/seminaive index_rebuilds=$rebuilds scales with rounds (want <= 2)" >&2
    exit 1
fi

# Parallel-path invariant on the bench smoke just produced: the
# chain/seminaive@4 thread-scaling row must actually run parallel
# ("threads":4), derive exactly the facts and stages of the sequential
# row, and stay within an order of magnitude of its wall time (thread
# spawn/merge overhead at smoke sizes; a pathological slowdown or a
# fallback to sequential fails here).
echo "==> bench smoke parallel row: enabled, identical work, sane wall time"
seq_row=$(grep '"workload":"chain","engine":"seminaive","threads":1' target/bench-smoke.json)
par_row=$(grep '"workload":"chain","engine":"seminaive","threads":4' target/bench-smoke.json)
if [ -z "$par_row" ]; then
    echo "chain/seminaive threads:4 row missing from bench smoke (parallel path not enabled)" >&2
    exit 1
fi
pick() { printf '%s' "$1" | sed "s/.*\"$2\":\([0-9]*\).*/\1/"; }
if [ "$(pick "$seq_row" facts_derived)" != "$(pick "$par_row" facts_derived)" ] \
    || [ "$(pick "$seq_row" stages)" != "$(pick "$par_row" stages)" ] \
    || [ "$(pick "$seq_row" rules_fired)" != "$(pick "$par_row" rules_fired)" ]; then
    echo "parallel chain/seminaive row drifted from sequential work gauges" >&2
    echo "  seq: $seq_row" >&2
    echo "  par: $par_row" >&2
    exit 1
fi
seq_median=$(printf '%s' "$seq_row" | sed 's/.*"median":\([0-9]*\).*/\1/')
par_median=$(printf '%s' "$par_row" | sed 's/.*"median":\([0-9]*\).*/\1/')
# 5ms of absolute slack on top of the 10x ratio: smoke-size rounds are
# microseconds, so per-round thread spawn/join overhead (~1-2ms across a
# 16-round chain) dominates the parallel median. The gate exists to
# catch pathological blowups (tens of ms), not spawn overhead.
if [ "$par_median" -gt $(( seq_median * 10 + 5000000 )) ]; then
    echo "parallel chain/seminaive pathologically slower than sequential" >&2
    echo "  seq median: ${seq_median}ns, par median: ${par_median}ns" >&2
    exit 1
fi

# Observability gate: a seeded 4-worker profile run must emit a valid
# Chrome trace-event file containing the full span taxonomy (validated
# by `unchained trace-check`, which parses the JSON and checks kinds),
# print the hottest-rules table, and the metrics scrape must expose the
# required series in the Prometheus text format.
echo "==> profile smoke: span kinds, hottest rules, metrics series"
profile_out=$(cargo run -q --release -p unchained-cli -- run -s seminaive \
    examples/programs/tc.dl examples/programs/tc_facts.dl \
    --threads 4 --profile target/profile-smoke.trace.json \
    --metrics target/profile-smoke.prom)
if ! printf '%s' "$profile_out" | grep -q "hottest rules"; then
    echo "profile run printed no hottest-rules table" >&2
    exit 1
fi
cargo run -q --release -p unchained-cli -- trace-check \
    target/profile-smoke.trace.json \
    --expect eval,stratum,round,rule,worker,join >/dev/null
for series in 'unchained_eval_runs_total{engine="seminaive"}' \
    unchained_eval_wall_seconds_bucket unchained_trace_spans; do
    if ! grep -q "$series" target/profile-smoke.prom; then
        echo "metrics scrape is missing series $series" >&2
        cat target/profile-smoke.prom >&2
        exit 1
    fi
done

# Space-accounting gate: a --memstats run must print a per-relation
# byte tree with a non-zero relation line and the additivity verdict
# (every branch's bytes equal to the sum of its children), and the
# report must be byte-identical at 1 and 4 workers.
echo "==> memstats smoke: non-zero relation bytes, additive, thread-invariant"
mem1=$(cargo run -q --release -p unchained-cli -- run -s seminaive \
    examples/programs/tc.dl examples/programs/tc_facts.dl --memstats --threads 1)
mem4=$(cargo run -q --release -p unchained-cli -- run -s seminaive \
    examples/programs/tc.dl examples/programs/tc_facts.dl --memstats --threads 4)
if ! printf '%s' "$mem1" | grep -q 'additive: ok'; then
    echo "memstats run failed the additivity check:" >&2
    printf '%s\n' "$mem1" >&2
    exit 1
fi
if printf '%s' "$mem1" | grep -q 'T/2  *0B'; then
    echo "memstats reports zero bytes for the derived relation T" >&2
    exit 1
fi
if [ "$mem1" != "$mem4" ]; then
    echo "memstats output differs between --threads 1 and --threads 4" >&2
    exit 1
fi

# Bench-history gate: the committed BENCH.json must validate against
# the last run of the committed append-only BENCH_HISTORY.json. The
# comparison checks only deterministic gauges (bytes growth, facts
# drift) — never wall time — so it passes on any machine.
echo "==> bench compare --history self-comparison on committed artifacts"
cargo run -q --release -p unchained-bench -- compare BENCH.json \
    --history BENCH_HISTORY.json >/dev/null

# Planner gate 1: `unchained plan` on the chain-TC example must render
# a cost-mode plan for every rule — a scan/join chain per rule, at
# least one Δ variant for the recursive rule, and the planner footer
# with the pruning/sharing gauges.
echo "==> plan smoke: cost-mode plans render for chain TC"
plan_out=$(cargo run -q --release -p unchained-cli -- plan \
    examples/programs/tc.dl examples/programs/tc_facts.dl)
for needle in '% mode: cost' 'rule 1:' 'scan ' 'join ' 'Δ variant:' '% planner:'; do
    if ! printf '%s' "$plan_out" | grep -qF "$needle"; then
        echo "plan output is missing \`$needle\`:" >&2
        printf '%s\n' "$plan_out" >&2
        exit 1
    fi
done

# Planner gate 2: the planner campaign differentially runs cost-based
# plans against the syntactic reference (sequential and parallel legs)
# on skewed-cardinality instances. A fixed seed keeps it deterministic;
# any divergence means plan choice leaked into semantics.
echo "==> fuzz smoke: planner/42/100, zero divergences"
rm -rf target/fuzz-planner-corpus
cargo run -q --release -p unchained-fuzz -- --campaign planner --seed 42 \
    --budget 100 --json target/fuzz-planner.json --corpus target/fuzz-planner-corpus \
    >/dev/null
if ! grep -q '"divergences":0' target/fuzz-planner.json; then
    echo "planner fuzz smoke found divergences:" >&2
    cat target/fuzz-planner.json >&2
    exit 1
fi

# Incremental-maintenance gate 1: the edit-script campaign drives an
# IncrementalSession through seeded insert/retract batches and compares
# every poll against from-scratch evaluation at 1 and 4 threads. A
# fixed seed keeps it deterministic; any divergence means maintenance
# drifted from the batch semantics.
echo "==> fuzz smoke: edits/42/200, zero divergences"
rm -rf target/fuzz-edits-corpus
cargo run -q --release -p unchained-fuzz -- --campaign edits --seed 42 \
    --budget 200 --json target/fuzz-edits.json --corpus target/fuzz-edits-corpus \
    >/dev/null
if ! grep -q '"divergences":0' target/fuzz-edits.json; then
    echo "edit-script fuzz smoke found divergences:" >&2
    cat target/fuzz-edits.json >&2
    exit 1
fi

# Incremental-maintenance gate 2: the ivm bench case retracts a chain
# edge, polls, and fails its own runner unless the poll overdeletes
# something and lands byte-identical to a from-scratch evaluation — so
# a quick filtered run is a conformance check, and the row must carry
# the DRed gauges.
echo "==> bench smoke: ivm case overdeletes and matches from-scratch"
cargo run -q --release -p unchained-bench -- --quick --filter ivm \
    --json target/bench-ivm.json >/dev/null
ivm_row=$(grep '"workload":"ivm","engine":"incremental"' target/bench-ivm.json)
if [ -z "$ivm_row" ]; then
    echo "ivm/incremental row missing from filtered bench smoke" >&2
    exit 1
fi
if [ "$(pick "$ivm_row" overdeleted)" = "0" ]; then
    echo "ivm bench row reports ivm_overdeleted=0 (retraction maintained nothing)" >&2
    echo "  row: $ivm_row" >&2
    exit 1
fi

# Columnar/morsel gate 1: the scale campaign runs layered digraphs of
# 10^4–10^5 EDB facts through the sequential engine vs morsel-parallel
# at 2/4/8 threads (model + stage-count equality) plus an incremental
# edit-script pass. A divergence here means the columnar layout or the
# morsel scheduler leaked into semantics at sizes the small-grammar
# campaigns never reach.
echo "==> fuzz smoke: scale/42/50, zero divergences"
rm -rf target/fuzz-scale-corpus
cargo run -q --release -p unchained-fuzz -- --campaign scale --seed 42 \
    --budget 50 --json target/fuzz-scale.json --corpus target/fuzz-scale-corpus \
    >/dev/null
if ! grep -q '"divergences":0' target/fuzz-scale.json; then
    echo "scale fuzz smoke found divergences:" >&2
    cat target/fuzz-scale.json >&2
    exit 1
fi

# Columnar/morsel gate 2: one full-size scale workload (Andersen
# points-to, 4.4e5-fact EDB) through the bench harness at one timed
# repetition. The thread-scaling rows must report byte-identical work
# gauges (facts, stages, rules fired) — the morsel scheduler is only
# allowed to change wall time — and the parallel wall time must stay
# within the same order of magnitude as sequential (this container is
# single-core, so parallel rows are legitimately slower, never faster;
# the gate catches pathological blowups, not missing speedups).
echo "==> bench smoke: scale_pointsto work-gauge equality seq vs parallel"
cargo run -q --release -p unchained-bench -- --filter scale_pointsto --reps 1 \
    --json target/bench-scale.json >/dev/null
scale_seq=$(grep '"workload":"scale_pointsto","engine":"seminaive","threads":1' \
    target/bench-scale.json)
if [ -z "$scale_seq" ]; then
    echo "scale_pointsto threads:1 row missing from bench smoke" >&2
    exit 1
fi
for t in 2 4 8; do
    scale_par=$(grep "\"workload\":\"scale_pointsto\",\"engine\":\"seminaive\",\"threads\":$t" \
        target/bench-scale.json)
    if [ -z "$scale_par" ]; then
        echo "scale_pointsto threads:$t row missing from bench smoke" >&2
        exit 1
    fi
    if [ "$(pick "$scale_seq" facts_derived)" != "$(pick "$scale_par" facts_derived)" ] \
        || [ "$(pick "$scale_seq" stages)" != "$(pick "$scale_par" stages)" ] \
        || [ "$(pick "$scale_seq" rules_fired)" != "$(pick "$scale_par" rules_fired)" ]; then
        echo "scale_pointsto threads:$t row drifted from sequential work gauges" >&2
        echo "  seq: $scale_seq" >&2
        echo "  par: $scale_par" >&2
        exit 1
    fi
    par_median=$(printf '%s' "$scale_par" | sed 's/.*"median":\([0-9]*\).*/\1/')
    seq_median=$(printf '%s' "$scale_seq" | sed 's/.*"median":\([0-9]*\).*/\1/')
    if [ "$par_median" -gt $(( seq_median * 10 + 5000000 )) ]; then
        echo "scale_pointsto threads:$t pathologically slower than sequential" >&2
        echo "  seq median: ${seq_median}ns, par median: ${par_median}ns" >&2
        exit 1
    fi
done

# Differential-fuzzer smoke: the fixed CI triple (positive/42/200) must
# run every oracle leg with zero divergences and an empty corpus, and
# the run must be deterministic enough to gate (same seed, same
# FUZZ.json on every machine — see EXPERIMENTS.md, Fuzzing campaigns).
echo "==> fuzz smoke: positive/42/200, zero divergences"
rm -rf target/fuzz-corpus
cargo run -q --release -p unchained-fuzz -- --seed 42 --budget 200 \
    --json target/fuzz-smoke.json --corpus target/fuzz-corpus >/dev/null
if ! grep -q '"divergences":0' target/fuzz-smoke.json; then
    echo "fuzz smoke found divergences:" >&2
    cat target/fuzz-smoke.json >&2
    exit 1
fi
if [ -d target/fuzz-corpus ] && [ -n "$(ls target/fuzz-corpus 2>/dev/null)" ]; then
    echo "fuzz smoke wrote repros despite divergences:0" >&2
    exit 1
fi

# Shrinker self-test: with a deliberately wrong oracle leg injected,
# the campaign must (a) detect divergences (exit 1) and (b) delta-debug
# every witness down to a repro of at most 3 rules.
echo "==> fuzz shrinker self-test: injected fault shrinks to <= 3 rules"
rm -rf target/fuzz-fault-corpus
set +e
cargo run -q --release -p unchained-fuzz -- --seed 7 --budget 20 --inject-fault \
    --json target/fuzz-fault.json --corpus target/fuzz-fault-corpus >/dev/null
fault_status=$?
set -e
if [ "$fault_status" != 1 ]; then
    echo "fault-injected fuzz run exited $fault_status (want 1: divergences found)" >&2
    exit 1
fi
repros=$(ls target/fuzz-fault-corpus/*.dl 2>/dev/null || true)
if [ -z "$repros" ]; then
    echo "fault-injected fuzz run wrote no repros" >&2
    exit 1
fi
for dl in $repros; do
    rules=$(grep -c -v '^%' "$dl")
    if [ "$rules" -gt 3 ]; then
        echo "repro $dl has $rules rules after shrinking (want <= 3)" >&2
        exit 1
    fi
done

echo "All checks passed."

#!/usr/bin/env sh
# The pre-PR gate: build, test, and check formatting — fully offline.
# The workspace has no external dependencies (the criterion benches in
# crates/bench are excluded from the workspace), so everything here
# must pass without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."

#!/usr/bin/env sh
# The pre-PR gate: build, test, formatting, and a benchmark-harness
# smoke — fully offline. The workspace has no external dependencies,
# so everything here must pass without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace"
cargo build --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

# Benchmark harness smoke: a quick run must produce a valid BENCH.json,
# and comparing a second run against it must exit 0. The threshold is
# deliberately loose (10x) — this gates the harness and the
# deterministic work gauges, not machine-dependent wall times.
echo "==> bench --quick smoke + baseline self-comparison"
mkdir -p target
cargo run -q --release -p unchained-bench -- --quick --json target/bench-smoke.json >/dev/null
cargo run -q --release -p unchained-bench -- --quick --baseline target/bench-smoke.json \
    --threshold 10 >/dev/null

# Index-maintenance invariant: on chain TC the semi-naive engine must
# absorb each round's committed segment instead of rebuilding, so the
# committed BENCH.json's chain/seminaive entry keeps index_rebuilds
# bounded by the relation count (2: G and T), not the round count (64).
echo "==> BENCH.json index_rebuilds bounded on chain TC"
rebuilds=$(grep '"workload":"chain","engine":"seminaive"' BENCH.json \
    | sed 's/.*"index_rebuilds":\([0-9]*\).*/\1/')
if [ -z "$rebuilds" ]; then
    echo "chain/seminaive entry missing from BENCH.json" >&2
    exit 1
fi
if [ "$rebuilds" -gt 2 ]; then
    echo "chain/seminaive index_rebuilds=$rebuilds scales with rounds (want <= 2)" >&2
    exit 1
fi

echo "All checks passed."
